"""Rankings with ties (bucket orders).

The central data structure of the paper is the *ranking with ties*, also
called a *bucket order* (Section 2.2): a transitive binary relation
represented by an ordered sequence of disjoint, non-empty *buckets*
``B1, ..., Bk``.  Elements inside the same bucket are tied; an element of
``Bi`` is ranked before every element of ``Bj`` whenever ``i < j``.

A *permutation* is the special case where every bucket has size one.

This module provides:

* :class:`Ranking` -- an immutable, hashable ranking with ties.
* :class:`BucketVector` -- a cheap mutable view used by local-search
  algorithms (BioConsert, Chanas) which repeatedly edit a candidate
  consensus.
* helpers to build rankings from permutations, scores, and position maps.

Elements may be any hashable object (integers, strings, ...).  All
operations are deterministic: buckets preserve the insertion order of their
elements for display purposes while comparisons use set semantics.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping, Sequence
from typing import Any

import numpy as np

from .exceptions import InvalidRankingError

Element = Hashable


def _freeze_buckets(buckets: Iterable[Iterable[Element]]) -> tuple[tuple[Element, ...], ...]:
    """Convert nested iterables to a tuple of tuples, preserving order."""
    return tuple(tuple(bucket) for bucket in buckets)


class Ranking:
    """An immutable ranking with ties (bucket order) over hashable elements.

    Parameters
    ----------
    buckets:
        An iterable of buckets, each bucket being an iterable of elements.
        Buckets must be non-empty and elements must not repeat.

    Examples
    --------
    >>> r = Ranking([["A"], ["D"], ["B", "C"]])
    >>> r.position_of("B")
    2
    >>> r.is_permutation
    False
    >>> len(r)
    4
    >>> r.buckets
    (('A',), ('D',), ('B', 'C'))
    """

    __slots__ = ("_buckets", "_positions", "_hash", "_dense", "_domain")

    def __init__(self, buckets: Iterable[Iterable[Element]]):
        frozen = _freeze_buckets(buckets)
        positions: dict[Element, int] = {}
        for index, bucket in enumerate(frozen):
            if not bucket:
                raise InvalidRankingError(
                    f"bucket {index} is empty; buckets must contain at least one element"
                )
            for element in bucket:
                if element in positions:
                    raise InvalidRankingError(
                        f"element {element!r} appears in more than one bucket"
                    )
                positions[element] = index
        self._buckets = frozen
        self._positions = positions
        self._hash: int | None = None
        self._dense: tuple[tuple[Element, ...], np.ndarray] | None = None
        self._domain: frozenset[Element] | None = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_permutation(cls, elements: Sequence[Element]) -> "Ranking":
        """Build a ranking whose buckets are all singletons.

        >>> Ranking.from_permutation(["A", "B", "C"]).buckets
        (('A',), ('B',), ('C',))
        """
        return cls([[element] for element in elements])

    @classmethod
    def from_positions(cls, positions: Mapping[Element, int]) -> "Ranking":
        """Build a ranking from an element -> bucket-position mapping.

        The positions need not be contiguous; elements sharing a position are
        tied and positions are compacted.

        >>> Ranking.from_positions({"A": 0, "B": 5, "C": 5}).buckets
        (('A',), ('B', 'C'))
        """
        if not positions:
            return cls([])
        by_position: dict[int, list[Element]] = {}
        for element, position in positions.items():
            by_position.setdefault(position, []).append(element)
        buckets = [by_position[position] for position in sorted(by_position)]
        return cls(buckets)

    @classmethod
    def from_scores(
        cls,
        scores: Mapping[Element, float],
        *,
        reverse: bool = False,
        tie_tolerance: float = 0.0,
    ) -> "Ranking":
        """Build a ranking by sorting elements by score.

        Elements whose scores differ by at most ``tie_tolerance`` (after
        sorting) are placed in the same bucket.  With the default tolerance
        of ``0.0`` only exactly equal scores are tied.

        Parameters
        ----------
        scores:
            Mapping from element to score.
        reverse:
            If ``True``, higher scores come first (descending order).
        tie_tolerance:
            Maximum absolute score difference for two *adjacent* elements to
            be considered tied.
        """
        if not scores:
            return cls([])
        ordered = sorted(scores.items(), key=lambda item: (item[1], _sort_key(item[0])))
        if reverse:
            ordered = sorted(
                scores.items(), key=lambda item: (-item[1], _sort_key(item[0]))
            )
        buckets: list[list[Element]] = []
        previous_score: float | None = None
        for element, score in ordered:
            if previous_score is not None and abs(score - previous_score) <= tie_tolerance:
                buckets[-1].append(element)
            else:
                buckets.append([element])
            previous_score = score
        return cls(buckets)

    @classmethod
    def single_bucket(cls, elements: Iterable[Element]) -> "Ranking":
        """Build a ranking where all elements are tied in a single bucket."""
        elements = list(elements)
        if not elements:
            return cls([])
        return cls([elements])

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def buckets(self) -> tuple[tuple[Element, ...], ...]:
        """The buckets, first (best-ranked) bucket first."""
        return self._buckets

    @property
    def domain(self) -> frozenset[Element]:
        """The set of elements ranked by this ranking (cached; the ranking
        is immutable and completeness checks ask for it repeatedly)."""
        if self._domain is None:
            self._domain = frozenset(self._positions)
        return self._domain

    @property
    def num_buckets(self) -> int:
        """Number of buckets."""
        return len(self._buckets)

    @property
    def is_permutation(self) -> bool:
        """``True`` when every bucket contains exactly one element."""
        return all(len(bucket) == 1 for bucket in self._buckets)

    @property
    def positions(self) -> Mapping[Element, int]:
        """Read-only element -> bucket-index mapping (0-based)."""
        return dict(self._positions)

    def position_of(self, element: Element) -> int:
        """Return the 0-based bucket index of ``element``.

        Raises ``KeyError`` when the element is not ranked.
        """
        return self._positions[element]

    def __contains__(self, element: Element) -> bool:
        return element in self._positions

    def __len__(self) -> int:
        return len(self._positions)

    def __iter__(self) -> Iterator[tuple[Element, ...]]:
        return iter(self._buckets)

    def elements(self) -> Iterator[Element]:
        """Iterate over elements from best to worst, bucket by bucket."""
        for bucket in self._buckets:
            yield from bucket

    def bucket_sizes(self) -> tuple[int, ...]:
        """Sizes of the buckets, in order."""
        return tuple(len(bucket) for bucket in self._buckets)

    def max_bucket_size(self) -> int:
        """Size of the largest bucket (0 for an empty ranking)."""
        if not self._buckets:
            return 0
        return max(len(bucket) for bucket in self._buckets)

    def tie_count(self) -> int:
        """Number of tied pairs, i.e. pairs of elements in the same bucket."""
        return sum(len(bucket) * (len(bucket) - 1) // 2 for bucket in self._buckets)

    def tie_density(self) -> float:
        """Fraction of element pairs that are tied (0 for permutations)."""
        n = len(self)
        total_pairs = n * (n - 1) // 2
        if total_pairs == 0:
            return 0.0
        return self.tie_count() / total_pairs

    # ------------------------------------------------------------------ #
    # Comparisons between elements
    # ------------------------------------------------------------------ #
    def prefers(self, a: Element, b: Element) -> bool:
        """``True`` when ``a`` is ranked strictly before ``b``."""
        return self._positions[a] < self._positions[b]

    def tied(self, a: Element, b: Element) -> bool:
        """``True`` when ``a`` and ``b`` are in the same bucket."""
        return self._positions[a] == self._positions[b]

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def restricted_to(self, elements: Iterable[Element]) -> "Ranking":
        """Project the ranking onto a subset of its elements.

        Buckets that become empty disappear; the relative order and the
        ties among the kept elements are preserved.
        """
        keep = set(elements)
        buckets = []
        for bucket in self._buckets:
            filtered = [element for element in bucket if element in keep]
            if filtered:
                buckets.append(filtered)
        return Ranking(buckets)

    def with_appended_bucket(self, elements: Iterable[Element]) -> "Ranking":
        """Return a new ranking with one extra bucket appended at the end.

        Used by the unification process (Section 5.1): missing elements are
        added in a final "unification bucket".
        """
        extra = [element for element in elements if element not in self._positions]
        if not extra:
            return self
        return Ranking(list(self._buckets) + [extra])

    def break_ties(self, order: Sequence[Element] | None = None) -> "Ranking":
        """Return a permutation obtained by breaking every tie.

        Parameters
        ----------
        order:
            Optional global ordering of elements used to break ties
            deterministically; elements appearing earlier in ``order`` are
            placed first.  When omitted, ties are broken by the natural sort
            order of the elements' representations.
        """
        if order is not None:
            rank = {element: index for index, element in enumerate(order)}

            def key(element: Element) -> Any:
                return rank.get(element, len(rank)), _sort_key(element)

        else:

            def key(element: Element) -> Any:
                return _sort_key(element)

        flat: list[Element] = []
        for bucket in self._buckets:
            flat.extend(sorted(bucket, key=key))
        return Ranking.from_permutation(flat)

    def reversed(self) -> "Ranking":
        """Return the ranking with buckets in reverse order."""
        return Ranking(tuple(reversed(self._buckets)))

    def canonical(self) -> "Ranking":
        """Return an equal ranking whose buckets are internally sorted.

        Useful to compare rankings for equality independently of the
        insertion order of tied elements.
        """
        return Ranking([sorted(bucket, key=_sort_key) for bucket in self._buckets])

    def as_position_list(self, elements: Sequence[Element]) -> list[int]:
        """Return the bucket index of each element of ``elements``, in order."""
        return [self._positions[element] for element in elements]

    # ------------------------------------------------------------------ #
    # Dense (array) representation
    # ------------------------------------------------------------------ #
    def sorted_elements(self) -> tuple[Element, ...]:
        """The domain in the library's canonical total order (see ``_sort_key``).

        Two rankings over the same domain always report the same order, so
        their :meth:`dense_positions` arrays are directly comparable.
        """
        return self._dense_encoding()[0]

    def dense_positions(self) -> np.ndarray:
        """Bucket index of every element of :meth:`sorted_elements`, as a
        read-only int64 array.

        Rankings are immutable, so the encoding is computed once and cached;
        repeated distance/weight computations against the same ranking skip
        re-encoding entirely.  Callers must not modify the returned array
        (it is marked non-writeable).
        """
        return self._dense_encoding()[1]

    def _dense_encoding(self) -> tuple[tuple[Element, ...], np.ndarray]:
        if self._dense is None:
            items = sorted(self._positions.items(), key=lambda item: _sort_key(item[0]))
            elements = tuple(element for element, _ in items)
            positions = np.fromiter(
                (position for _, position in items), dtype=np.int64, count=len(items)
            )
            positions.flags.writeable = False
            self._dense = (elements, positions)
        return self._dense

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Ranking):
            return NotImplemented
        if len(self._buckets) != len(other._buckets):
            return False
        return all(
            frozenset(mine) == frozenset(theirs)
            for mine, theirs in zip(self._buckets, other._buckets)
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(tuple(frozenset(bucket) for bucket in self._buckets))
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join("{" + ", ".join(repr(e) for e in bucket) + "}" for bucket in self._buckets)
        return f"Ranking([{inner}])"


def _sort_key(element: Element) -> tuple[str, str]:
    """A total order over arbitrary hashable elements (type name, then repr)."""
    return (type(element).__name__, repr(element))


class BucketVector:
    """A mutable element -> bucket-index map used by local-search algorithms.

    Local-search algorithms such as BioConsert repeatedly move a single
    element between buckets.  Re-building an immutable :class:`Ranking` at
    every step would dominate the running time, so they operate on this
    lightweight structure and convert back once the search has converged.

    The bucket indices stored here are *dense*: they always form the range
    ``0 .. num_buckets - 1``.

    Parameters
    ----------
    ranking:
        The ranking providing the initial element -> bucket assignment.
    """

    __slots__ = ("_position", "_buckets")

    def __init__(self, ranking: Ranking):
        self._position: dict[Element, int] = dict(ranking.positions)
        self._buckets: list[set[Element]] = [set(bucket) for bucket in ranking.buckets]

    # ------------------------------------------------------------------ #
    @property
    def num_buckets(self) -> int:
        return len(self._buckets)

    def position_of(self, element: Element) -> int:
        return self._position[element]

    def bucket(self, index: int) -> frozenset[Element]:
        return frozenset(self._buckets[index])

    def bucket_size(self, index: int) -> int:
        return len(self._buckets[index])

    def elements(self) -> Iterator[Element]:
        for bucket in self._buckets:
            yield from bucket

    # ------------------------------------------------------------------ #
    # Edition operations (the two BioConsert moves, Section 3.1)
    # ------------------------------------------------------------------ #
    def move_to_existing_bucket(self, element: Element, target_index: int) -> None:
        """Move ``element`` into the existing bucket at ``target_index``.

        If the element's current bucket becomes empty it is removed and
        subsequent bucket indices are shifted down by one.
        """
        current = self._position[element]
        if current == target_index:
            return
        self._buckets[current].discard(element)
        self._buckets[target_index].add(element)
        self._position[element] = target_index
        if not self._buckets[current]:
            self._remove_empty_bucket(current)

    def move_to_new_bucket(self, element: Element, insertion_index: int) -> None:
        """Remove ``element`` from its bucket and insert it alone at a new bucket.

        ``insertion_index`` is interpreted *after* the element has been
        removed (and after the removal of its bucket if it became empty),
        i.e. it is the index the new singleton bucket will have in the
        resulting ranking.  Valid values range from ``0`` to ``num_buckets``.
        """
        current = self._position[element]
        self._buckets[current].discard(element)
        removed_empty = not self._buckets[current]
        if removed_empty:
            self._remove_empty_bucket(current)
        self._buckets.insert(insertion_index, {element})
        for other, position in self._position.items():
            if position >= insertion_index and other != element:
                self._position[other] = position + 1
        self._position[element] = insertion_index

    def _remove_empty_bucket(self, index: int) -> None:
        del self._buckets[index]
        for element, position in self._position.items():
            if position > index:
                self._position[element] = position - 1

    # ------------------------------------------------------------------ #
    def to_ranking(self) -> Ranking:
        """Convert back to an immutable :class:`Ranking`."""
        return Ranking([sorted(bucket, key=_sort_key) for bucket in self._buckets if bucket])

    def copy(self) -> "BucketVector":
        clone = object.__new__(BucketVector)
        clone._position = dict(self._position)
        clone._buckets = [set(bucket) for bucket in self._buckets]
        return clone

    def __repr__(self) -> str:
        return f"BucketVector({self.to_ranking()!r})"
