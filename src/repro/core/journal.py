"""Durable write-ahead journal for :class:`~repro.core.live.LiveDataset`.

PR 8 made the dataset a continuously-written structure, but every live
session existed only in process memory: a SIGKILL lost every acknowledged
mutation.  This module adds the durability layer underneath it — an
**append-only, per-record-checksummed, segment-rotated** journal whose
replay reconstructs the live state byte-for-byte:

* every record is one line, ``<sha256-of-payload> <canonical-json>``, so
  a torn write (process killed mid-append, disk full) is detectable per
  record, not per file;
* segments rotate at a configurable byte ceiling
  (``segment-00000001.log``, ``segment-00000002.log``, …) so compaction
  can drop history without rewriting live files;
* :meth:`LiveJournal.snapshot` writes a checksummed **snapshot** of the
  full live state — the rankings *and* the delta-maintained before/tied
  matrices — then deletes every older segment and snapshot.  Replay from
  a snapshot adopts the stored matrices
  (:meth:`~repro.core.live.LiveDataset.adopt`) instead of re-counting
  them, which is what makes recovery a fast tail-replay rather than a
  full rebuild;
* :func:`replay_journal` tolerates exactly one kind of damage — a torn
  *tail* on the newest segment, which it truncates (the unacknowledged
  write that was in flight when the process died).  A bad record with
  valid records after it is real corruption and raises
  :class:`JournalCorruptionError`: silently skipping it would replay a
  different history than was acknowledged.

Durability contract
-------------------

Appends are flushed to the OS page cache before :meth:`LiveJournal.append`
returns, whatever the fsync policy — so an acknowledged mutation survives
the *process* being SIGKILLed.  The ``fsync`` policy governs survival of a
*machine* crash:

``"always"``
    ``fsync`` after every record.  Slowest, zero-loss.
``"batch"`` (default)
    ``fsync`` every ``batch_records`` appends and on rotation, snapshot
    and close.  Bounded loss window on power failure, near-zero overhead.
``"never"``
    Leave it to the OS.  Process-crash-safe only.

Because PR 8's delta updates are associative int64 arithmetic, the state
produced by replaying a journal is **byte-identical** to a from-scratch
:func:`~repro.core.prepared.prepare_rankings` over the same mutation
history — the invariant the recovery test suite pins.

Fault-injection sites (:mod:`repro.testing.faults`): ``journal.append``
fires before a record is written, ``journal.fsync`` before each fsync.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from ..telemetry import runtime as _telemetry
from ..testing import faults as _faults
from .exceptions import ReproError
from .live import LiveDataset
from .ranking import Ranking

__all__ = [
    "JournalError",
    "JournalCorruptionError",
    "LiveJournal",
    "ReplayResult",
    "replay_journal",
    "journal_exists",
    "init_record",
    "mutation_record",
    "repair_record",
    "FSYNC_POLICIES",
    "DEFAULT_SEGMENT_BYTES",
    "DEFAULT_BATCH_RECORDS",
]

#: Accepted ``fsync`` policies, strictest first.
FSYNC_POLICIES = ("always", "batch", "never")

#: Segment rotation ceiling: a segment that would exceed this many bytes
#: is closed and a new one opened.
DEFAULT_SEGMENT_BYTES = 1 << 20

#: ``fsync="batch"``: records between forced fsyncs.  Every append is
#: still flushed to the OS (process death loses nothing acknowledged);
#: the batch interval only bounds loss on a machine crash, so it trades
#: a larger bound for keeping the write path out of fsync latency
#: (amortized fsync is what dominates the journal tax otherwise).
DEFAULT_BATCH_RECORDS = 256

# Telemetry instrument names (pinned; core cannot import repro.service).
JOURNAL_APPENDS = "journal.appends"
JOURNAL_FSYNCS = "journal.fsyncs"
JOURNAL_ROTATIONS = "journal.rotations"
JOURNAL_SNAPSHOTS = "journal.snapshots"
JOURNAL_REPLAYED = "journal.replayed_records"
JOURNAL_TRUNCATED = "journal.truncated_records"
JOURNAL_RECOVERED = "journal.recovered_sessions"

_SEGMENT_PATTERN = re.compile(r"^segment-(\d{8})\.log$")
_SNAPSHOT_PATTERN = re.compile(r"^snapshot-(\d{8})\.json$")
_MUTATION_TYPES = frozenset({"add", "remove", "update"})


class JournalError(ReproError, RuntimeError):
    """A journal operation that cannot proceed (bad policy, closed writer,
    opening a fresh session over a non-empty journal, …)."""


class JournalCorruptionError(JournalError):
    """Journal content that cannot be trusted.

    Raised on a checksum/parse failure that is *not* a torn tail — a bad
    record followed by valid ones, an undecodable snapshot with its
    history already compacted away, or a record stream inconsistent with
    the dataset it replays onto.  Unlike a torn tail (truncated quietly:
    the write was never acknowledged), this damage means acknowledged
    history is unrecoverable, which must never be papered over.
    """


def _canonical(record: dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"), default=str)


def _checksum(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _encode_matrix(matrix: np.ndarray) -> str:
    return base64.b64encode(np.ascontiguousarray(matrix, dtype=np.int64).tobytes()).decode("ascii")


def _decode_matrix(data: str, n: int) -> np.ndarray:
    return np.frombuffer(base64.b64decode(data), dtype=np.int64).reshape(n, n)


def _format_ranking(ranking: Ranking) -> str:
    # Imported lazily: repro.datasets imports repro.core at module load.
    from ..datasets.io import format_ranking

    return format_ranking(ranking)


def _parse_ranking(line: str) -> Ranking:
    from ..datasets.io import parse_ranking

    return parse_ranking(line)


# --------------------------------------------------------------------------- #
# Record constructors (the pinned journal vocabulary)
# --------------------------------------------------------------------------- #
def init_record(
    name: str,
    rankings: Any,
    metadata: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """The journal's first record: the initial population of the dataset.

    Parameters
    ----------
    name:
        The live dataset's name.
    rankings:
        The initial rankings (serialized to the paper's text format).
    metadata:
        Free-form dataset metadata (must be JSON-representable).
    """
    return {
        "type": "init",
        "name": name,
        "rankings": [_format_ranking(ranking) for ranking in rankings],
        "metadata": dict(metadata or {}),
    }


def mutation_record(
    kind: str,
    generation: int,
    *,
    index: int | None = None,
    ranking: Ranking | str | None = None,
) -> dict[str, Any]:
    """One acknowledged write: ``add`` / ``remove`` / ``update``.

    Parameters
    ----------
    kind:
        The mutation kind.
    generation:
        The dataset generation *after* the mutation applied.
    index:
        The position the mutation touched (the resolved position for
        ``add``, so replay is deterministic even for append-at-end).
    ranking:
        The ranking added or substituted (absent for ``remove``).  An
        already-serialized text line is stored as-is — callers holding a
        cached serialization (:meth:`~repro.core.live.LiveDataset.line_at`)
        skip re-formatting on the hot write path.
    """
    if kind not in _MUTATION_TYPES:
        raise JournalError(f"unknown mutation kind {kind!r}")
    record: dict[str, Any] = {"type": kind, "generation": generation, "index": index}
    if ranking is not None:
        record["ranking"] = (
            ranking if isinstance(ranking, str) else _format_ranking(ranking)
        )
    return record


def repair_record(
    generation: int,
    consensus: Ranking,
    score: int,
    algorithm: str,
) -> dict[str, Any]:
    """One published consensus: what recovery warm-starts from.

    Parameters
    ----------
    generation:
        The dataset generation the consensus was repaired up to.
    consensus:
        The published consensus ranking.
    score:
        Its generalized Kemeny score against that generation's weights.
    algorithm:
        Registry name of the algorithm that produced it.
    """
    return {
        "type": "repair",
        "generation": generation,
        "consensus": [list(bucket) for bucket in consensus.buckets],
        "score": int(score),
        "algorithm": algorithm,
    }


# --------------------------------------------------------------------------- #
# Segment scanning
# --------------------------------------------------------------------------- #
def _scan_segment(path: Path) -> tuple[list[dict[str, Any]], int, int]:
    """Parse one segment file.

    Returns ``(records, valid_bytes, torn_records)`` where ``valid_bytes``
    is the byte offset after the last valid record.  A damaged record is
    tolerated only as the *tail* (everything after the valid prefix holds
    no further valid record); damage followed by a valid record raises
    :class:`JournalCorruptionError`.
    """
    data = path.read_bytes()
    records: list[dict[str, Any]] = []
    offset = 0
    valid_bytes = 0
    torn = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        end = len(data) if newline < 0 else newline + 1
        line = data[offset:end]
        record = _parse_record_line(line) if newline >= 0 else None
        if record is None:
            # Invalid (or unterminated) line: a torn tail only if no
            # valid record follows anywhere after it.
            remainder = data[offset:]
            torn = sum(1 for part in remainder.split(b"\n") if part.strip())
            for part in remainder.split(b"\n"):
                if _parse_record_line(part + b"\n") is not None:
                    raise JournalCorruptionError(
                        f"corrupt record mid-segment in {path.name} at byte "
                        f"{offset}: valid records follow the damage"
                    )
            break
        records.append(record)
        offset = end
        valid_bytes = end
    return records, valid_bytes, torn


def _parse_record_line(line: bytes) -> dict[str, Any] | None:
    """Decode one ``<checksum> <json>\\n`` line; ``None`` when invalid."""
    if not line.endswith(b"\n"):
        return None
    try:
        text = line[:-1].decode("utf-8")
    except UnicodeDecodeError:
        return None
    checksum, _, payload = text.partition(" ")
    if len(checksum) != 64 or not payload:
        return None
    if _checksum(payload) != checksum:
        return None
    try:
        record = json.loads(payload)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


def _list_indexed(directory: Path, pattern: re.Pattern[str]) -> list[tuple[int, Path]]:
    entries = []
    if directory.is_dir():
        for path in directory.iterdir():
            match = pattern.match(path.name)
            if match:
                entries.append((int(match.group(1)), path))
    entries.sort()
    return entries


def journal_exists(directory: str | Path) -> bool:
    """Whether ``directory`` holds any journal content (segments/snapshots).

    Parameters
    ----------
    directory:
        The journal directory to probe.
    """
    directory = Path(directory)
    return bool(
        _list_indexed(directory, _SEGMENT_PATTERN)
        or _list_indexed(directory, _SNAPSHOT_PATTERN)
    )


# --------------------------------------------------------------------------- #
# Writer
# --------------------------------------------------------------------------- #
class LiveJournal:
    """Append-only writer over one journal directory.

    Opening a writer on a directory with existing segments first truncates
    any torn tail off the newest segment (the same repair replay performs),
    then continues appending to it — or rotates, if it already reached the
    segment ceiling.

    Parameters
    ----------
    directory:
        The journal directory (created if missing).
    fsync:
        Disk-durability policy, one of :data:`FSYNC_POLICIES`.
    batch_records:
        ``fsync="batch"``: records between forced fsyncs.
    segment_max_bytes:
        Rotation ceiling per segment file.
    name:
        Label used in telemetry and fault-injection keys (defaults to the
        directory name).
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: str = "batch",
        batch_records: int = DEFAULT_BATCH_RECORDS,
        segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
        name: str | None = None,
    ):
        if fsync not in FSYNC_POLICIES:
            raise JournalError(
                f"unknown fsync policy {fsync!r}; expected one of {FSYNC_POLICIES}"
            )
        if batch_records < 1:
            raise JournalError(f"batch_records must be >= 1, got {batch_records}")
        if segment_max_bytes < 1:
            raise JournalError(
                f"segment_max_bytes must be >= 1, got {segment_max_bytes}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_policy = fsync
        self.batch_records = batch_records
        self.segment_max_bytes = segment_max_bytes
        self.name = name if name is not None else self.directory.name
        self._closed = False
        self._appended = 0
        self._since_fsync = 0
        self._since_snapshot = 0
        segments = _list_indexed(self.directory, _SEGMENT_PATTERN)
        snapshots = _list_indexed(self.directory, _SNAPSHOT_PATTERN)
        self._had_records = bool(segments or snapshots)
        if segments:
            index, last = segments[-1]
            _, valid_bytes, torn = _scan_segment(last)
            if torn:
                with open(last, "r+b") as handle:
                    handle.truncate(valid_bytes)
                if _telemetry.is_enabled():
                    _telemetry.count(JOURNAL_TRUNCATED, torn, journal=self.name)
            self._segment_index = index
            self._segment_bytes = last.stat().st_size
        else:
            self._segment_index = (snapshots[-1][0] if snapshots else 1)
            self._segment_bytes = 0
        self._handle = open(self._segment_path(self._segment_index), "ab")

    # ------------------------------------------------------------------ #
    @property
    def appended(self) -> int:
        """Records appended through this writer instance."""
        return self._appended

    @property
    def appended_since_snapshot(self) -> int:
        """Records appended since this writer last wrote a snapshot."""
        return self._since_snapshot

    @property
    def had_records(self) -> bool:
        """Whether the directory held journal content when the writer opened."""
        return self._had_records

    @property
    def segment_index(self) -> int:
        """Index of the segment currently being appended to."""
        return self._segment_index

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` ran."""
        return self._closed

    def _segment_path(self, index: int) -> Path:
        return self.directory / f"segment-{index:08d}.log"

    def _snapshot_path(self, index: int) -> Path:
        return self.directory / f"snapshot-{index:08d}.json"

    # ------------------------------------------------------------------ #
    def append(self, record: dict[str, Any]) -> None:
        """Durably append one record (write-ahead acknowledgement point).

        The record is flushed to the OS page cache before this returns —
        an acknowledged append survives SIGKILL; the fsync policy decides
        when it also survives power loss.

        Parameters
        ----------
        record:
            A JSON-representable record (see the record constructors).
        """
        if self._closed:
            raise JournalError(f"journal {self.name!r} is closed")
        _faults.maybe_fire(
            "journal.append", key=f"{self.name}:{record.get('type', '')}",
            attempt=self._appended,
        )
        payload = _canonical(record)
        data = f"{_checksum(payload)} {payload}\n".encode("utf-8")
        if self._segment_bytes and self._segment_bytes + len(data) > self.segment_max_bytes:
            self._rotate()
        self._handle.write(data)
        self._handle.flush()
        self._segment_bytes += len(data)
        self._appended += 1
        self._since_snapshot += 1
        self._since_fsync += 1
        if _telemetry.is_enabled():
            _telemetry.count(
                JOURNAL_APPENDS, journal=self.name, type=str(record.get("type", ""))
            )
        if self.fsync_policy == "always" or (
            self.fsync_policy == "batch" and self._since_fsync >= self.batch_records
        ):
            self._fsync()

    def flush(self) -> None:
        """Flush and fsync the current segment, whatever the policy."""
        if self._closed:
            return
        self._handle.flush()
        self._fsync()

    def _fsync(self) -> None:
        _faults.maybe_fire("journal.fsync", key=self.name)
        os.fsync(self._handle.fileno())
        self._since_fsync = 0
        if _telemetry.is_enabled():
            _telemetry.count(JOURNAL_FSYNCS, journal=self.name)

    def _rotate(self) -> None:
        """Close the full segment (fsynced) and open the next one."""
        self._handle.flush()
        if self.fsync_policy != "never":
            self._fsync()
        self._handle.close()
        self._segment_index += 1
        self._segment_bytes = 0
        self._handle = open(self._segment_path(self._segment_index), "ab")
        if _telemetry.is_enabled():
            _telemetry.count(JOURNAL_ROTATIONS, journal=self.name)

    # ------------------------------------------------------------------ #
    def snapshot(
        self,
        dataset: LiveDataset,
        *,
        consensus: Ranking | None = None,
        score: int | None = None,
        algorithm: str | None = None,
        repair_generation: int | None = None,
    ) -> Path:
        """Write a compaction snapshot and drop the history it covers.

        The snapshot carries the full recoverable state — rankings, the
        delta-maintained before/tied matrices (so replay adopts instead of
        recounting), generation and the latest published consensus.  Every
        segment and snapshot older than it is deleted; subsequent appends
        go to a fresh segment.

        Parameters
        ----------
        dataset:
            The live dataset whose current generation is snapshot.
        consensus, score, algorithm:
            The latest published consensus (recovery warm-starts from it).
        repair_generation:
            The generation that consensus was repaired up to (defaults to
            the snapshot generation, i.e. a fresh consensus).
        """
        if self._closed:
            raise JournalError(f"journal {self.name!r} is closed")
        weights = dataset.weights()
        payload: dict[str, Any] = {
            "type": "snapshot",
            "name": dataset.name,
            "metadata": dict(dataset.metadata),
            "generation": dataset.generation,
            "num_elements": dataset.num_elements,
            "elements": list(dataset.elements),
            "rankings": [dataset.line_at(i) for i in range(dataset.num_rankings)],
            "before": _encode_matrix(weights.before_matrix),
            "tied": _encode_matrix(weights.tied_matrix),
        }
        if consensus is not None:
            payload["consensus"] = [list(bucket) for bucket in consensus.buckets]
            payload["score"] = None if score is None else int(score)
            payload["algorithm"] = algorithm
            payload["repair_generation"] = (
                dataset.generation if repair_generation is None else repair_generation
            )
        text = _canonical(payload)
        document = json.dumps({"checksum": _checksum(text), "payload": payload})
        # Seal the current segment first so the snapshot index cleanly
        # partitions history: everything < index is covered by it.
        self._handle.flush()
        if self.fsync_policy != "never":
            self._fsync()
        self._handle.close()
        covered = self._segment_index
        index = covered + 1
        path = self._snapshot_path(index)
        temporary = path.with_suffix(".json.tmp")
        temporary.write_text(document, encoding="utf-8")
        with open(temporary, "rb") as handle:
            os.fsync(handle.fileno())
        os.replace(temporary, path)
        for seg_index, seg_path in _list_indexed(self.directory, _SEGMENT_PATTERN):
            if seg_index <= covered:
                seg_path.unlink()
        for snap_index, snap_path in _list_indexed(self.directory, _SNAPSHOT_PATTERN):
            if snap_index < index:
                snap_path.unlink()
        self._segment_index = index
        self._segment_bytes = 0
        self._since_snapshot = 0
        self._handle = open(self._segment_path(index), "ab")
        if _telemetry.is_enabled():
            _telemetry.count(JOURNAL_SNAPSHOTS, journal=self.name)
        return path

    def close(self) -> None:
        """Flush, fsync and release the current segment (idempotent)."""
        if self._closed:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._closed = True

    def __enter__(self) -> "LiveJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"LiveJournal({str(self.directory)!r}, fsync={self.fsync_policy!r}, "
            f"segment={self._segment_index}, appended={self._appended})"
        )


# --------------------------------------------------------------------------- #
# Replay
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ReplayResult:
    """Everything :func:`replay_journal` reconstructed.

    Attributes
    ----------
    dataset:
        The recovered live dataset, generation aligned with the journal.
    generation:
        The dataset generation the journal reached.
    consensus:
        The last published consensus (``None`` if none was journaled).
    score:
        Its journaled score (against the weights of
        :attr:`repair_generation`).
    algorithm:
        Registry name of the algorithm that published it.
    repair_generation:
        The generation :attr:`consensus` was repaired up to (recovery is
        stale when it trails :attr:`generation`).
    replayed_records:
        Mutation/repair records applied on top of the starting state.
    truncated_records:
        Torn trailing records dropped from the newest segment.
    from_snapshot:
        Whether replay started from a compaction snapshot (fast path)
        rather than the init record.
    """

    dataset: LiveDataset
    generation: int
    consensus: Ranking | None
    score: int | None
    algorithm: str | None
    repair_generation: int | None
    replayed_records: int
    truncated_records: int
    from_snapshot: bool


def _load_snapshot(path: Path) -> dict[str, Any] | None:
    """Decode and verify one snapshot document; ``None`` when damaged."""
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (ValueError, OSError):
        return None
    if not isinstance(document, dict):
        return None
    payload = document.get("payload")
    if not isinstance(payload, dict):
        return None
    if _checksum(_canonical(payload)) != document.get("checksum"):
        return None
    return payload


def replay_journal(
    directory: str | Path, *, truncate: bool = True
) -> ReplayResult:
    """Reconstruct the live state a journal directory describes.

    Starts from the newest verifiable snapshot when one exists (adopting
    its matrices — no recount), else from the init record, then applies
    every later mutation in order.  A torn tail on the newest segment is
    dropped (and physically truncated when ``truncate`` is set); any other
    damage raises :class:`JournalCorruptionError`.

    Parameters
    ----------
    directory:
        The journal directory to replay.
    truncate:
        Physically truncate a torn tail off the newest segment (the
        repair a recovering writer would perform anyway).
    """
    directory = Path(directory)
    segments = _list_indexed(directory, _SEGMENT_PATTERN)
    snapshots = _list_indexed(directory, _SNAPSHOT_PATTERN)
    if not segments and not snapshots:
        raise JournalError(f"no journal content in {directory}")

    snapshot: dict[str, Any] | None = None
    snapshot_index = 0
    for index, path in reversed(snapshots):
        snapshot = _load_snapshot(path)
        if snapshot is not None:
            snapshot_index = index
            break
        # A damaged snapshot is only survivable while the history it
        # compacted away still exists (an older snapshot or the init
        # record); keep looking.
    if snapshots and snapshot is None and not any(
        index < snapshots[0][0] for index, _ in segments
    ):
        covered = min(index for index, _ in snapshots)
        if not any(index < covered for index, _ in segments):
            raise JournalCorruptionError(
                f"every snapshot in {directory} is damaged and the history "
                "they compacted away has been deleted"
            )

    dataset: LiveDataset | None = None
    consensus: Ranking | None = None
    score: int | None = None
    algorithm: str | None = None
    repair_generation: int | None = None
    generation = 0
    if snapshot is not None:
        n = int(snapshot["num_elements"])
        generation = int(snapshot["generation"])
        before = _decode_matrix(snapshot["before"], n)
        tied = _decode_matrix(snapshot["tied"], n)
        if snapshot.get("elements") is not None:
            # Fast path: adopt the canonical text lines without parsing —
            # only rankings the tail actually touches get parsed lazily,
            # which keeps replay O(tail) instead of O(m).
            dataset = LiveDataset.adopt_lines(
                snapshot["rankings"],
                snapshot["elements"],
                before,
                tied,
                name=str(snapshot.get("name", directory.name)),
                metadata=snapshot.get("metadata") or {},
                generation=generation,
            )
        else:  # pre-"elements" snapshots: parse eagerly
            dataset = LiveDataset.adopt(
                [_parse_ranking(line) for line in snapshot["rankings"]],
                before,
                tied,
                name=str(snapshot.get("name", directory.name)),
                metadata=snapshot.get("metadata") or {},
                generation=generation,
            )
        if snapshot.get("consensus") is not None:
            consensus = Ranking(snapshot["consensus"])
            score = snapshot.get("score")
            score = None if score is None else int(score)
            algorithm = snapshot.get("algorithm")
            repair_generation = int(snapshot.get("repair_generation", generation))

    replayed = 0
    truncated_total = 0
    live_segments = [
        (index, path) for index, path in segments if index >= snapshot_index
    ]
    for position, (index, path) in enumerate(live_segments):
        records, valid_bytes, torn = _scan_segment(path)
        if torn:
            if position != len(live_segments) - 1:
                raise JournalCorruptionError(
                    f"segment {path.name} has a damaged tail but newer "
                    "segments follow it"
                )
            truncated_total += torn
            if truncate:
                with open(path, "r+b") as handle:
                    handle.truncate(valid_bytes)
        for record in records:
            kind = record.get("type")
            if kind == "init":
                if dataset is not None:
                    raise JournalCorruptionError(
                        f"unexpected init record mid-journal in {path.name}"
                    )
                dataset = LiveDataset(
                    [_parse_ranking(line) for line in record["rankings"]],
                    name=str(record.get("name", directory.name)),
                    metadata=record.get("metadata") or {},
                )
                replayed += 1
                continue
            if dataset is None:
                raise JournalCorruptionError(
                    f"record of type {kind!r} before any init record or "
                    f"snapshot in {path.name}"
                )
            if kind == "add":
                dataset.add_ranking(
                    _parse_ranking(record["ranking"]),
                    None if record.get("index") is None else int(record["index"]),
                )
            elif kind == "remove":
                dataset.remove_ranking(int(record["index"]))
            elif kind == "update":
                dataset.update_ranking(
                    int(record["index"]), _parse_ranking(record["ranking"])
                )
            elif kind == "repair":
                consensus = Ranking(record["consensus"])
                score = int(record["score"])
                algorithm = record.get("algorithm")
                repair_generation = int(record["generation"])
                replayed += 1
                continue
            else:
                raise JournalCorruptionError(
                    f"unknown record type {kind!r} in {path.name}"
                )
            generation = int(record.get("generation", dataset.generation))
            replayed += 1
    if dataset is None:
        raise JournalCorruptionError(
            f"journal in {directory} holds no init record and no snapshot"
        )
    # Align the in-memory mutation counter with the journaled history so
    # resumed writers and stream offsets agree on how far the state got.
    dataset._generation = generation
    if _telemetry.is_enabled():
        _telemetry.count(JOURNAL_REPLAYED, replayed, journal=directory.name)
        if truncated_total:
            _telemetry.count(
                JOURNAL_TRUNCATED, truncated_total, journal=directory.name
            )
    return ReplayResult(
        dataset=dataset,
        generation=generation,
        consensus=consensus,
        score=score,
        algorithm=algorithm,
        repair_generation=repair_generation,
        replayed_records=replayed,
        truncated_records=truncated_total,
        from_snapshot=snapshot is not None,
    )
