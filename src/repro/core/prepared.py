"""Shared dataset-preparation plans.

Every algorithm of the paper's Table 1 consumes the same derived structure
of a dataset: the canonical element order, the dense (m × n) position
tensor (:mod:`repro.core.arrays`) and the pairwise weight matrices
(:class:`~repro.core.pairwise.PairwiseWeights`).  Building that structure
is the O(m·n²) part of an aggregation call — and the experiment pipeline
runs *every* algorithm over the *same* datasets, so rebuilding it inside
each ``aggregate()`` call repeats identical work once per algorithm, again
for the post-run Kemeny score and once more per portfolio candidate.

A :class:`PreparedDataset` is the computed-once bundle those consumers
share: like a query plan, it is built a single time per dataset and every
downstream operator (algorithm run, candidate scoring, anytime racer)
reuses it.  Plans are obtained through

* :func:`prepare_rankings` for a plain sequence of rankings (always builds);
* :meth:`repro.datasets.Dataset.prepared` for datasets — memoized on the
  (immutable) dataset instance, so repeated calls are free;
* the **worker-local plan cache** (:func:`cached_plan` / :func:`store_plan`)
  keyed by the dataset content fingerprint: process-pool workers receive a
  fresh unpickled ``Dataset`` per work item, so the instance memo never
  hits — the fingerprint-keyed cache lets each worker prepare a dataset
  once and reuse the plan across all the specs it executes for it.

All structures in a plan are read-only and content-derived: sharing one
plan across algorithms, threads or repeated calls can never change a
result (the equivalence suite in ``tests/algorithms`` asserts exactly
that, registry-wide).
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from collections.abc import Sequence

import numpy as np

from .kemeny import generalized_kemeny_score_from_weights
from .pairwise import PairwiseWeights
from .ranking import Element, Ranking

__all__ = [
    "PreparedDataset",
    "prepare_rankings",
    "rankings_fingerprint",
    "cached_plan",
    "store_plan",
    "plan_build_count",
    "clear_plan_cache",
    "plan_cache_limit",
    "set_plan_cache_limit",
]

# How many plans a worker keeps alive at once.  Engine shards contain a
# handful of datasets; the LRU bound keeps long-lived workers (and serve
# sessions whose LiveDatasets churn a fresh fingerprint on every write)
# from pinning every O(n²) matrix pair they ever prepared.  Configurable
# via :func:`set_plan_cache_limit`.
_DEFAULT_PLAN_CACHE_MAX = 8
_plan_cache_max = _DEFAULT_PLAN_CACHE_MAX

_plan_cache: "OrderedDict[str, PreparedDataset]" = OrderedDict()

# Number of plans actually *built* (not served from any cache) since import;
# tests and benchmarks assert reuse against it.
_build_count = 0


def rankings_fingerprint(rankings: Sequence[Ranking]) -> str:
    """Content digest of a sequence of rankings.

    Hashes the canonical text serialization (the distribution format of
    :mod:`repro.datasets.io`), so the digest is identical to the engine's
    ``dataset_fingerprint`` for a dataset holding the same rankings —
    worker-local plan cache keys and persistent result-cache keys agree.

    Parameters
    ----------
    rankings:
        The rankings to digest, in dataset order.
    """
    # Imported lazily: repro.datasets imports repro.core at module load.
    from ..datasets.io import format_ranking

    text = "\n".join(format_ranking(ranking) for ranking in rankings)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class PreparedDataset:
    """The computed-once preparation plan of a complete dataset.

    Attributes
    ----------
    rankings:
        The input rankings the plan was built from (tuple, dataset order).
    elements:
        The common domain in canonical sorted order; every array of the
        plan is indexed consistently with it.
    positions:
        The dense (m × n) position tensor (read-only): ``positions[k, i]``
        is the bucket index of ``elements[i]`` in ``rankings[k]``.
    weights:
        The pairwise weight matrices built from the tensor.
    prepare_seconds:
        Wall-clock time spent building the plan.
    """

    __slots__ = ("rankings", "elements", "positions", "weights", "prepare_seconds", "_fingerprint")

    def __init__(
        self,
        rankings: Sequence[Ranking],
        *,
        fingerprint: str | None = None,
    ):
        """Build the plan for ``rankings`` (use :func:`prepare_rankings`).

        Parameters
        ----------
        rankings:
            The complete, non-empty dataset to prepare.
        fingerprint:
            Pre-computed content digest; computed lazily on first access
            when omitted.
        """
        start = time.perf_counter()
        self.rankings: tuple[Ranking, ...] = tuple(rankings)
        self.weights = PairwiseWeights(self.rankings)
        self.elements: list[Element] = self.weights.elements
        self.positions: np.ndarray = self.weights.positions
        self._fingerprint = fingerprint
        self.prepare_seconds = time.perf_counter() - start

    @classmethod
    def from_weights(
        cls,
        rankings: Sequence[Ranking],
        weights: PairwiseWeights,
        *,
        fingerprint: str | None = None,
        prepare_seconds: float = 0.0,
    ) -> "PreparedDataset":
        """Assemble a plan around already-built pairwise weights.

        The delta-maintenance path of :class:`~repro.core.live.LiveDataset`
        produces weights without ever running the O(m·n²) construction; this
        constructor packages them as a regular plan so the whole engine /
        portfolio / service stack consumes live snapshots unchanged.

        Parameters
        ----------
        rankings:
            The rankings ``weights`` describes, in dataset order.
        weights:
            The pairwise weight matrices (read-only, content-derived).
        fingerprint:
            Pre-computed content digest; computed lazily when omitted.
        prepare_seconds:
            Wall-clock cost to attribute to the plan (the delta-update time,
            not a full rebuild).
        """
        plan = object.__new__(cls)
        plan.rankings = tuple(rankings)
        plan.weights = weights
        plan.elements = weights.elements
        plan.positions = weights.positions
        plan._fingerprint = fingerprint
        plan.prepare_seconds = prepare_seconds
        return plan

    # ------------------------------------------------------------------ #
    @property
    def num_rankings(self) -> int:
        """Number of input rankings ``m``."""
        return len(self.rankings)

    @property
    def num_elements(self) -> int:
        """Number of elements ``n`` in the common domain."""
        return len(self.elements)

    @property
    def fingerprint(self) -> str:
        """Content digest of the prepared rankings (computed on demand)."""
        if self._fingerprint is None:
            self._fingerprint = rankings_fingerprint(self.rankings)
        return self._fingerprint

    def score(self, consensus: Ranking) -> int:
        """Generalized Kemeny score of ``consensus`` from the plan's weights.

        O(n²), independent of the number of input rankings — the scoring
        routine every prepared aggregation call uses.

        Parameters
        ----------
        consensus:
            Candidate consensus over the plan's domain.
        """
        return generalized_kemeny_score_from_weights(consensus, self.weights)

    def matches(self, rankings: Sequence[Ranking]) -> bool:
        """Check that the plan describes exactly ``rankings``.

        Guards ``aggregate(dataset, prepared=...)`` against a plan built
        for a different dataset.  Each ranking is compared by identity
        first (the normal flow hands back the very objects the plan was
        built from, so this is O(m)) with an equality fallback — sibling
        datasets sharing shape and domain but not content are rejected.

        Parameters
        ----------
        rankings:
            The rankings about to be aggregated with this plan.
        """
        if len(rankings) != len(self.rankings):
            return False
        return all(
            theirs is mine or theirs == mine
            for theirs, mine in zip(rankings, self.rankings)
        )

    def __repr__(self) -> str:
        return (
            f"PreparedDataset(m={self.num_rankings}, n={self.num_elements}, "
            f"prepare_seconds={self.prepare_seconds:.4f})"
        )


def prepare_rankings(
    rankings: Sequence[Ranking], *, fingerprint: str | None = None
) -> PreparedDataset:
    """Build a :class:`PreparedDataset` for a sequence of rankings.

    Always builds (no cache lookup) — dataset-level memoization lives on
    :meth:`repro.datasets.Dataset.prepared`, which combines the instance
    memo with the worker-local cache before falling back to this builder.

    Parameters
    ----------
    rankings:
        The complete, non-empty dataset to prepare.
    fingerprint:
        Optional pre-computed content digest stored on the plan.
    """
    global _build_count
    plan = PreparedDataset(rankings, fingerprint=fingerprint)
    _build_count += 1
    return plan


# --------------------------------------------------------------------------- #
# Worker-local plan cache (fingerprint-keyed)
# --------------------------------------------------------------------------- #
def cached_plan(fingerprint: str) -> PreparedDataset | None:
    """Look a plan up in the worker-local cache.

    Parameters
    ----------
    fingerprint:
        Content digest of the dataset (see :func:`rankings_fingerprint`).
    """
    plan = _plan_cache.get(fingerprint)
    if plan is not None:
        _plan_cache.move_to_end(fingerprint)
    return plan


def store_plan(fingerprint: str, plan: PreparedDataset) -> None:
    """Store a plan in the worker-local cache (LRU-bounded).

    Parameters
    ----------
    fingerprint:
        Content digest the plan is addressed under.
    plan:
        The prepared plan to keep.
    """
    _plan_cache[fingerprint] = plan
    _plan_cache.move_to_end(fingerprint)
    evicted = 0
    while len(_plan_cache) > _plan_cache_max:
        _plan_cache.popitem(last=False)
        evicted += 1
    if evicted:
        # Imported lazily: repro.telemetry imports repro.core at module load.
        from ..telemetry import runtime as _telemetry

        if _telemetry.is_enabled():
            _telemetry.count("plan_cache.evict", evicted)


def plan_build_count() -> int:
    """Number of plans built (not cache-served) since process start.

    The reuse tests snapshot this counter around an engine batch to assert
    "one plan per dataset".
    """
    return _build_count


def clear_plan_cache() -> None:
    """Drop every worker-local cached plan (tests / memory pressure)."""
    _plan_cache.clear()


def plan_cache_limit() -> int:
    """Current LRU capacity of the worker-local plan cache."""
    return _plan_cache_max


def set_plan_cache_limit(limit: int | None) -> int:
    """Set the LRU capacity of the worker-local plan cache.

    Long-running serve sessions whose LiveDatasets churn a fresh
    fingerprint on every write stream plans through this cache; the bound
    is what keeps that churn from becoming a memory leak.  Shrinking the
    limit evicts immediately (ticking the ``plan_cache.evict`` telemetry
    counter through :func:`store_plan`'s eviction path).

    Parameters
    ----------
    limit:
        New capacity (must be >= 1); ``None`` restores the default.

    Returns
    -------
    int
        The previous capacity (so tests can restore it).
    """
    global _plan_cache_max
    if limit is None:
        limit = _DEFAULT_PLAN_CACHE_MAX
    if limit < 1:
        raise ValueError(f"plan cache limit must be >= 1, got {limit}")
    previous = _plan_cache_max
    _plan_cache_max = limit
    evicted = 0
    while len(_plan_cache) > _plan_cache_max:
        _plan_cache.popitem(last=False)
        evicted += 1
    if evicted:
        from ..telemetry import runtime as _telemetry

        if _telemetry.is_enabled():
            _telemetry.count("plan_cache.evict", evicted)
    return previous
