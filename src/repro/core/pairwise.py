"""Pairwise weight matrices.

Most of the paper's algorithms (KwikSort, BioConsert, FaginDyn, Copeland,
Ailon's LP relaxation, the exact LPB program of Section 4.2) only need, for
every ordered pair of elements ``(a, b)``, the number of input rankings
that place ``a`` strictly before ``b`` (``w_{a<b}``) and the number that tie
``a`` and ``b`` (``w_{a=b}``).  These counts are sufficient statistics for
the generalized Kemeny score: once computed, scoring or locally editing a
candidate consensus no longer touches the input rankings.

:class:`PairwiseWeights` computes the matrices once per dataset, in
O(m · n²) time from the dataset's stacked (m × n) position tensor
(:mod:`repro.core.arrays`) — batched comparisons with zero per-element
Python calls — and exposes the derived quantities the algorithms need.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .arrays import pairwise_order_counts, position_tensor
from .exceptions import DomainMismatchError, EmptyDatasetError
from .ranking import Element, Ranking

__all__ = ["PairwiseWeights"]


class PairwiseWeights:
    """Pairwise order statistics of a dataset of rankings with ties.

    Attributes
    ----------
    elements:
        The elements of the common domain, in a fixed (sorted-by-repr) order;
        all matrices are indexed consistently with this list.
    index_of:
        Mapping from element to its row/column index.
    before_matrix:
        ``before_matrix[i, j]`` is the number of input rankings that rank
        ``elements[i]`` strictly before ``elements[j]``.
    tied_matrix:
        ``tied_matrix[i, j]`` is the number of input rankings that tie
        ``elements[i]`` and ``elements[j]`` (symmetric, zero diagonal).
    positions:
        The dense (m × n) position tensor the matrices were counted from
        (read-only): ``positions[k, i]`` is the bucket index of
        ``elements[i]`` in ranking ``k``.  Retained so that positional
        algorithms (Borda, Copeland, MEDRank, RepeatChoice) can run their
        dense kernels off the same preparation instead of re-reading the
        rankings.
    num_rankings:
        Number of input rankings ``m``.
    """

    __slots__ = (
        "elements",
        "index_of",
        "before_matrix",
        "tied_matrix",
        "positions",
        "num_rankings",
        "_cost_before",
        "_cost_tied",
        "_flat_costs",
    )

    def __init__(self, rankings: Sequence[Ranking]):
        if not rankings:
            raise EmptyDatasetError("cannot compute pairwise weights of an empty dataset")
        # position_tensor re-checks the domains, but raising here keeps the
        # historical, more actionable error message.
        domain = rankings[0].domain
        for ranking in rankings[1:]:
            if ranking.domain != domain:
                raise DomainMismatchError(
                    "all rankings must be over the same elements; "
                    "normalize the dataset first (projection or unification)"
                )
        elements, positions = position_tensor(rankings)
        positions.flags.writeable = False
        self.elements: list[Element] = elements
        self.index_of: dict[Element, int] = {
            element: index for index, element in enumerate(elements)
        }
        self.before_matrix, self.tied_matrix = pairwise_order_counts(positions)
        self.positions = positions
        self.num_rankings = len(rankings)
        self._cost_before: np.ndarray | None = None
        self._cost_tied: np.ndarray | None = None
        self._flat_costs: tuple[np.ndarray, np.ndarray] | None = None

    @classmethod
    def from_state(
        cls,
        elements: Sequence[Element],
        positions: np.ndarray,
        before_matrix: np.ndarray,
        tied_matrix: np.ndarray,
        num_rankings: int,
    ) -> "PairwiseWeights":
        """Wrap already-computed pairwise state without re-counting it.

        Used by :class:`~repro.core.live.LiveDataset`, which maintains the
        before/tied matrices by O(n²)-per-mutation delta updates: a snapshot
        hands the maintained state over here instead of paying the O(m·n²)
        rebuild.  The arrays are adopted as-is (callers pass frozen copies;
        every array is marked read-only here) and the memoized cost-matrix
        carriers start empty, exactly as after a from-scratch construction —
        derived lazily from identical inputs, they stay byte-identical.

        Parameters
        ----------
        elements:
            The common domain in canonical sorted order.
        positions:
            The dense (m × n) position tensor matching ``elements``.
        before_matrix, tied_matrix:
            The (n × n) before/tied count matrices (``tied_matrix`` must be
            symmetric with a zero diagonal).
        num_rankings:
            Number of input rankings ``m`` the matrices were counted from.
        """
        if num_rankings < 1:
            raise EmptyDatasetError("cannot build pairwise weights for an empty dataset")
        weights = object.__new__(cls)
        for array in (positions, before_matrix, tied_matrix):
            array.flags.writeable = False
        weights.elements = list(elements)
        weights.index_of = {element: index for index, element in enumerate(weights.elements)}
        weights.before_matrix = before_matrix
        weights.tied_matrix = tied_matrix
        weights.positions = positions
        weights.num_rankings = num_rankings
        weights._cost_before = None
        weights._cost_tied = None
        weights._flat_costs = None
        return weights

    # ------------------------------------------------------------------ #
    # Derived matrices
    # ------------------------------------------------------------------ #
    @property
    def num_elements(self) -> int:
        """Number of elements ``n`` in the common domain."""
        return len(self.elements)

    @property
    def before_or_tied_matrix(self) -> np.ndarray:
        """``w_{a≤b}``: rankings placing ``a`` before or tied with ``b``."""
        return self.before_matrix + self.tied_matrix

    @property
    def after_matrix(self) -> np.ndarray:
        """``w_{a>b}``: rankings placing ``a`` strictly after ``b``."""
        return self.before_matrix.T

    def cost_before(self) -> np.ndarray:
        """Cost matrix ``C_before[i, j]``: disagreements incurred by ranking
        ``elements[i]`` strictly before ``elements[j]`` in the consensus.

        Every ranking that places ``j`` before ``i`` or ties the pair
        disagrees: ``C_before = w_{j<i} + w_{i=j}``.

        Memoized (read-only): scoring and the local searches consult it on
        every candidate, so it is materialised once per weights object.
        """
        if self._cost_before is None:
            matrix = self.before_matrix.T + self.tied_matrix
            matrix.flags.writeable = False
            self._cost_before = matrix
        return self._cost_before

    def cost_tied(self) -> np.ndarray:
        """Cost matrix ``C_tied[i, j]``: disagreements incurred by tying
        ``elements[i]`` and ``elements[j]`` in the consensus.

        Every ranking that does not tie the pair disagrees:
        ``C_tied = w_{i<j} + w_{j<i}``.  Memoized (read-only), like
        :meth:`cost_before`.
        """
        if self._cost_tied is None:
            matrix = self.before_matrix + self.before_matrix.T
            matrix.flags.writeable = False
            self._cost_tied = matrix
        return self._cost_tied

    def flat_cost_vectors(self) -> tuple[np.ndarray, np.ndarray]:
        """Flattened float copies of the cost matrices for dot-product scoring.

        Returns ``(cost_before_flat, cost_tied_flat)`` in the smallest
        float dtype that carries the scoring dot products exactly: the
        products sum non-negative terms totalling at most ``2·m·n²``, so
        float32 is exact below its 2**24 integer ceiling and float64
        beyond.  Memoized — candidate scoring hits this on every call.
        """
        if self._flat_costs is None:
            n = len(self.elements)
            dtype = (
                np.float32
                if 2 * self.num_rankings * n * n <= (1 << 23)
                else np.float64
            )
            before_flat = self.cost_before().ravel().astype(dtype)
            tied_flat = self.cost_tied().ravel().astype(dtype)
            before_flat.flags.writeable = False
            tied_flat.flags.writeable = False
            self._flat_costs = (before_flat, tied_flat)
        return self._flat_costs

    # ------------------------------------------------------------------ #
    # Element-level queries used by the algorithms
    # ------------------------------------------------------------------ #
    def weight_before(self, a: Element, b: Element) -> int:
        """Number of rankings placing ``a`` strictly before ``b``."""
        return int(self.before_matrix[self.index_of[a], self.index_of[b]])

    def weight_tied(self, a: Element, b: Element) -> int:
        """Number of rankings tying ``a`` and ``b``."""
        return int(self.tied_matrix[self.index_of[a], self.index_of[b]])

    def pair_cost(self, a: Element, b: Element, relation: str) -> int:
        """Cost of placing the pair ``(a, b)`` in the consensus as ``relation``.

        ``relation`` is one of ``"before"`` (a before b), ``"after"``
        (a after b) or ``"tied"``.
        """
        i = self.index_of[a]
        j = self.index_of[b]
        if relation == "before":
            return int(self.before_matrix[j, i] + self.tied_matrix[i, j])
        if relation == "after":
            return int(self.before_matrix[i, j] + self.tied_matrix[i, j])
        if relation == "tied":
            return int(self.before_matrix[i, j] + self.before_matrix[j, i])
        raise ValueError(f"unknown relation {relation!r}; expected 'before', 'after' or 'tied'")

    @property
    def domain(self) -> frozenset[Element]:
        """The common domain of the input rankings."""
        return frozenset(self.index_of)

    def majority_prefers(self, a: Element, b: Element) -> bool:
        """``True`` when strictly more rankings place ``a`` before ``b``
        than the other way around (ties in the inputs do not vote)."""
        i = self.index_of[a]
        j = self.index_of[b]
        return bool(self.before_matrix[i, j] > self.before_matrix[j, i])
