"""Distances between rankings.

Implements the two dissimilarity measures of Section 2 of the paper:

* the classical **Kendall-τ distance** ``D`` between permutations, counting
  the pairs ordered differently in the two permutations;
* the **generalized Kendall-τ distance** ``G`` between rankings with ties,
  counting the pairs that are either inverted, or tied in exactly one of
  the two rankings (each such pair costs one disagreement).

Both distances are provided in two flavours:

* a pure-Python *reference* implementation (clear, O(n²), used in tests as
  the ground truth);
* a vectorised NumPy implementation operating on bucket-position arrays,
  which is what the rest of the library calls.

The module also implements the weighted variant of ``G`` discussed in
Section 2.2 (a cost ``p`` for tie/untie disagreements instead of 1) and
Spearman's footrule for completeness.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .arrays import disagreement_counts, pairwise_distance_tensor, position_tensor
from .exceptions import DomainMismatchError
from .ranking import Element, Ranking

__all__ = [
    "kendall_tau_distance",
    "generalized_kendall_tau_distance",
    "generalized_kendall_tau_distance_reference",
    "weighted_generalized_kendall_tau_distance",
    "spearman_footrule_distance",
    "position_arrays",
    "max_pair_count",
    "pairwise_distance_matrix",
    "pairwise_distance_matrix_reference",
]


def _check_same_domain(r: Ranking, s: Ranking) -> None:
    if r.domain != s.domain:
        missing_in_s = r.domain - s.domain
        missing_in_r = s.domain - r.domain
        raise DomainMismatchError(
            "rankings are not over the same elements "
            f"(only in first: {sorted(map(repr, missing_in_s))[:5]}, "
            f"only in second: {sorted(map(repr, missing_in_r))[:5]})"
        )


def position_arrays(r: Ranking, s: Ranking) -> tuple[np.ndarray, np.ndarray]:
    """Return the bucket-position arrays of ``r`` and ``s`` over a common
    element order.

    The element order itself is irrelevant to the distances; only the pairs
    of positions matter.  The arrays are the rankings' cached dense
    encodings (:meth:`Ranking.dense_positions`) — aligned because both
    domains are identical — and are read-only; repeated distance calls
    against the same ranking skip re-encoding.
    """
    _check_same_domain(r, s)
    return r.dense_positions(), s.dense_positions()


def max_pair_count(n: int) -> int:
    """Number of unordered element pairs over ``n`` elements: n(n-1)/2."""
    return n * (n - 1) // 2


# --------------------------------------------------------------------------- #
# Kendall-τ (permutations)
# --------------------------------------------------------------------------- #
def kendall_tau_distance(pi: Ranking, sigma: Ranking) -> int:
    """Classical Kendall-τ distance ``D`` between two permutations.

    Counts the pairs ``{i, j}`` ordered differently by the two permutations.

    Parameters
    ----------
    pi, sigma:
        The two permutations, over the same elements.  Ties raise
        :class:`ValueError` because the classical distance is not a
        distance on rankings with ties (Section 2.2).
    """
    if not pi.is_permutation or not sigma.is_permutation:
        raise ValueError(
            "kendall_tau_distance is only defined for permutations; "
            "use generalized_kendall_tau_distance for rankings with ties"
        )
    pos_pi, pos_sigma = position_arrays(pi, sigma)
    return _count_discordant(pos_pi, pos_sigma)


def _count_discordant(pos_a: np.ndarray, pos_b: np.ndarray) -> int:
    """Count pairs ordered in opposite ways by the two position arrays.

    Uses a merge-sort based inversion count: sort the elements by position
    in ``a`` and count inversions of the corresponding ``b`` positions.
    O(n log n).
    """
    order = np.argsort(pos_a, kind="stable")
    sequence = pos_b[order]
    _, inversions = _sort_and_count(sequence.tolist())
    return inversions


def _sort_and_count(sequence: list[int]) -> tuple[list[int], int]:
    """Merge sort that also counts strict inversions."""
    n = len(sequence)
    if n <= 1:
        return sequence, 0
    mid = n // 2
    left, left_inv = _sort_and_count(sequence[:mid])
    right, right_inv = _sort_and_count(sequence[mid:])
    merged: list[int] = []
    inversions = left_inv + right_inv
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
            inversions += len(left) - i
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged, inversions


# --------------------------------------------------------------------------- #
# Generalized Kendall-τ (rankings with ties)
# --------------------------------------------------------------------------- #
def generalized_kendall_tau_distance_reference(r: Ranking, s: Ranking) -> int:
    """Reference O(n²) implementation of the generalized Kendall-τ distance.

    A pair of elements counts as one disagreement when it is

    * ordered in opposite ways by the two rankings, or
    * tied in exactly one of the two rankings.

    This is the formulation ``G`` of Section 2.2 with unit costs.
    """
    _check_same_domain(r, s)
    elements = list(r.domain)
    disagreements = 0
    for index, a in enumerate(elements):
        ra = r.position_of(a)
        sa = s.position_of(a)
        for b in elements[index + 1:]:
            rb = r.position_of(b)
            sb = s.position_of(b)
            if _pair_disagrees(ra, rb, sa, sb):
                disagreements += 1
    return disagreements


def _pair_disagrees(ra: int, rb: int, sa: int, sb: int) -> bool:
    """Unit-cost disagreement test for a single pair."""
    if ra < rb and sa > sb:
        return True
    if ra > rb and sa < sb:
        return True
    if ra != rb and sa == sb:
        return True
    if ra == rb and sa != sb:
        return True
    return False


def generalized_kendall_tau_distance(r: Ranking, s: Ranking) -> int:
    """Generalized Kendall-τ distance ``G`` between two rankings with ties.

    Equivalent to :func:`generalized_kendall_tau_distance_reference` but
    computed by the dense array kernel
    (:func:`repro.core.arrays.disagreement_counts`), which counts on the
    full comparison matrices — no ``np.triu_indices`` temporaries — and is
    one to two orders of magnitude faster for the dataset sizes used in the
    paper.

    For two permutations, ``G`` coincides with the classical Kendall-τ
    distance ``D``.
    """
    pos_r, pos_s = position_arrays(r, s)
    inverted, tied_in_one = disagreement_counts(pos_r, pos_s)
    return inverted + tied_in_one


def weighted_generalized_kendall_tau_distance(
    r: Ranking, s: Ranking, *, tie_cost: float = 1.0
) -> float:
    """Generalized Kendall-τ distance with a configurable tie/untie cost.

    The paper (Section 2.2) uses a unit cost both for inverted pairs and for
    pairs tied in exactly one ranking.  Earlier work ([10, 12, 21] in the
    paper) assigns a different cost ``p`` to the tie/untie case; this
    function implements that weighted variant.  Both flavours share the
    same counting kernel; only the final weighting differs.

    Parameters
    ----------
    tie_cost:
        Cost charged for each pair tied in exactly one of the two rankings.
        ``tie_cost=1.0`` recovers :func:`generalized_kendall_tau_distance`.
    """
    if tie_cost < 0:
        raise ValueError("tie_cost must be non-negative")
    pos_r, pos_s = position_arrays(r, s)
    inverted, tied_in_one = disagreement_counts(pos_r, pos_s)
    return float(inverted + tie_cost * tied_in_one)


# --------------------------------------------------------------------------- #
# Spearman's footrule
# --------------------------------------------------------------------------- #
def spearman_footrule_distance(r: Ranking, s: Ranking) -> float:
    """Spearman's footrule distance between two rankings with ties.

    Positions of tied elements are taken as the average of the positions the
    bucket occupies (the usual mid-rank convention).  The footrule is within
    a constant factor of the Kendall-τ distance [Diaconis & Graham 1977],
    which is why the paper focuses on Kendall-τ; the footrule is provided
    for completeness and for use as a cheap lower-bound heuristic.
    """
    _check_same_domain(r, s)
    mid_r = _mid_rank_positions(r)
    mid_s = _mid_rank_positions(s)
    return float(sum(abs(mid_r[e] - mid_s[e]) for e in r.domain))


def _mid_rank_positions(r: Ranking) -> dict[Element, float]:
    """Mid-rank (1-based, averaged within buckets) position of every element."""
    positions: dict[Element, float] = {}
    start = 1
    for bucket in r.buckets:
        size = len(bucket)
        mid = start + (size - 1) / 2.0
        for element in bucket:
            positions[element] = mid
        start += size
    return positions


def pairwise_distance_matrix(rankings: Sequence[Ranking]) -> np.ndarray:
    """Matrix of generalized Kendall-τ distances between all pairs of rankings.

    Entry ``[i, j]`` is ``G(rankings[i], rankings[j])``.  The matrix is
    symmetric with a zero diagonal.

    All pairs are computed at once from the dataset's stacked position
    tensor (:func:`repro.core.arrays.pairwise_distance_tensor`) instead of
    ``m²`` independent distance calls; see
    :func:`pairwise_distance_matrix_reference` for the retained per-pair
    path.
    """
    if len(rankings) == 0:
        return np.zeros((0, 0), dtype=np.int64)
    _, positions = position_tensor(rankings)
    return pairwise_distance_tensor(positions)


def pairwise_distance_matrix_reference(rankings: Sequence[Ranking]) -> np.ndarray:
    """Reference all-pairs path: one distance call per pair of rankings.

    Kept as the ground truth for the batched
    :func:`pairwise_distance_matrix`; the outputs are identical.
    """
    m = len(rankings)
    matrix = np.zeros((m, m), dtype=np.int64)
    for i in range(m):
        for j in range(i + 1, m):
            distance = generalized_kendall_tau_distance(rankings[i], rankings[j])
            matrix[i, j] = distance
            matrix[j, i] = distance
    return matrix
