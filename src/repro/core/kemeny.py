"""Kemeny scores and optimality gaps.

Section 2 of the paper defines:

* the **Kemeny score** ``S(pi, P)``: the sum of Kendall-τ distances between a
  permutation ``pi`` and every permutation of a set ``P``;
* the **generalized Kemeny score** ``K(r, R)``: the sum of generalized
  Kendall-τ distances between a ranking with ties ``r`` and every ranking of
  a set ``R``.

An *optimal consensus* minimises the (generalized) Kemeny score over all
possible rankings (with ties).

This module provides both scores, an efficient implementation of ``K`` based
on the pairwise weight matrices (so that scoring a candidate consensus does
not require re-reading the whole dataset), and the per-pair cost
decomposition used by several algorithms.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .arrays import distances_to_stack, pairwise_distance_tensor, position_tensor
from .distances import kendall_tau_distance
from .pairwise import PairwiseWeights
from .ranking import Ranking

__all__ = [
    "kemeny_score",
    "generalized_kemeny_score",
    "generalized_kemeny_score_from_weights",
    "generalized_kemeny_scores_of_stack",
    "score_of_single_bucket",
    "trivial_upper_bound",
]


def kemeny_score(pi: Ranking, rankings: Sequence[Ranking]) -> int:
    """Classical Kemeny score ``S`` of a permutation against a set of permutations.

    All rankings (including ``pi``) must be permutations over the same
    elements.
    """
    return sum(kendall_tau_distance(pi, sigma) for sigma in rankings)


def generalized_kemeny_score(r: Ranking, rankings: Sequence[Ranking]) -> int:
    """Generalized Kemeny score ``K`` of a ranking with ties against a dataset.

    ``K(r, R) = sum_{s in R} G(r, s)`` where ``G`` is the generalized
    Kendall-τ distance with unit costs (Section 2.2).  The whole dataset is
    scored in one batched kernel over the stacked position tensor instead
    of ``m`` independent distance calls.

    Parameters
    ----------
    r:
        The candidate consensus ranking.
    rankings:
        The input rankings ``R``, all over the same elements as ``r``.
    """
    if not rankings:
        return 0
    _, positions = position_tensor([r, *rankings])
    return int(distances_to_stack(positions[0], positions[1:]).sum())


def generalized_kemeny_score_from_weights(r: Ranking, weights: PairwiseWeights) -> int:
    """Generalized Kemeny score computed from pre-computed pairwise weights.

    For a candidate consensus ``r`` the score decomposes over unordered
    element pairs ``{a, b}``:

    * if ``a`` is before ``b`` in ``r``, the pair costs ``w(b before a) +
      w(a tied b)`` — one disagreement for every input ranking that orders
      the pair the other way or ties it;
    * symmetrically if ``b`` is before ``a``;
    * if ``a`` and ``b`` are tied in ``r``, the pair costs ``w(a before b) +
      w(b before a)`` — one disagreement for every input ranking that does
      not tie the pair.

    This runs in O(n²) independently of the number of input rankings and is
    the scoring routine used by the search-based algorithms.
    """
    elements = weights.elements
    n = len(elements)
    if n < 2:
        return 0
    if r.domain == weights.domain:
        # The cached dense encoding is aligned with weights.elements (both
        # use the canonical sorted element order).
        positions = r.dense_positions()
    else:
        # Mismatched domain: preserve the historical behaviour (KeyError on
        # elements the candidate does not rank).
        positions = np.fromiter(
            (r.position_of(element) for element in elements),
            dtype=np.int64,
            count=n,
        )
    # a-before-b in the consensus costs w[b before a] + w[a tied b]; summing
    # where pos_a < pos_b visits every strictly ordered pair exactly once
    # (in its consensus orientation).  a-tied-b costs w[a before b] +
    # w[b before a]; the equality mask visits every tied pair twice and the
    # (zero-cost) diagonal once, hence the halving.  Both reductions are
    # dot products of a 0/1 mask against the flattened memoized cost
    # matrices — non-negative terms, so the float carrier is exact as long
    # as the total stays under the dtype's integer ceiling (2·m·n² bounds
    # it; see the dtype guard).
    cost_before_flat, cost_tied_flat = weights.flat_cost_vectors()
    dtype = cost_before_flat.dtype
    less = (positions[:, None] < positions[None, :]).reshape(n * n).astype(dtype)
    equal = (positions[:, None] == positions[None, :]).reshape(n * n).astype(dtype)
    total = float(less @ cost_before_flat) + float(equal @ cost_tied_flat) / 2.0
    return int(np.rint(total))


def generalized_kemeny_scores_of_stack(
    position_stack: np.ndarray, weights: PairwiseWeights
) -> np.ndarray:
    """Generalized Kemeny scores of a stack of candidate position vectors.

    ``position_stack`` is a (k × n) tensor of dense bucket positions, one
    row per candidate consensus, aligned with ``weights.elements``; the
    returned int64 vector holds each candidate's score against the input
    dataset.  Each row reduces to two dot products of its comparison masks
    against the flattened (memoized) cost matrices — this is how the
    repeated-run ("Min") variants and Pick-a-Perm score their candidate
    pools.  The dot products sum non-negative terms whose total is at most
    ``2·m·n²``, so float32 is an exact carrier below its 2**24 integer
    ceiling and float64 (exact up to 2**53) beyond.

    Parameters
    ----------
    position_stack:
        (k × n) dense bucket positions of the candidates.
    weights:
        Pre-computed pairwise weights of the input dataset.
    """
    k, n = position_stack.shape
    out = np.zeros(k, dtype=np.int64)
    if k == 0 or n < 2:
        return out
    cost_before, cost_tied = weights.flat_cost_vectors()
    dtype = cost_before.dtype
    for index in range(k):
        positions = position_stack[index]
        less = (positions[:, None] < positions[None, :]).reshape(n * n).astype(dtype)
        equal = (positions[:, None] == positions[None, :]).reshape(n * n).astype(dtype)
        out[index] = int(
            np.rint(float(less @ cost_before) + float(equal @ cost_tied) / 2.0)
        )
    return out


def score_of_single_bucket(weights: PairwiseWeights) -> int:
    """Score of the consensus that ties every element in one bucket.

    Every pair costs one disagreement per input ranking that does not tie
    it.  This is the degenerate solution the classical Kendall-τ distance
    would (wrongly) consider optimal, mentioned in Section 2.2.

    Parameters
    ----------
    weights:
        Pre-computed pairwise weights of the input rankings.
    """
    # Each unordered pair costs before[i, j] + before[j, i]; the full-matrix
    # sum counts exactly that (the diagonal is zero).
    return int(weights.before_matrix.sum())


def trivial_upper_bound(rankings: Sequence[Ranking]) -> int:
    """A valid upper bound on the optimal generalized Kemeny score.

    The best input ranking (Pick-a-Perm with the de-randomized choice,
    Section 3.2) is a 2-approximation, so its score upper-bounds twice the
    optimum; the bound returned here is simply its score, which is an upper
    bound on the optimal score since the optimum minimises over a superset.

    Parameters
    ----------
    rankings:
        The input rankings the bound is computed over.
    """
    if not rankings:
        return 0
    # The score of input ranking i against the dataset is row i of the
    # all-pairs distance matrix; the bound is the smallest row sum.
    _, positions = position_tensor(rankings)
    return int(pairwise_distance_tensor(positions).sum(axis=1).min())
