"""Kemeny scores and optimality gaps.

Section 2 of the paper defines:

* the **Kemeny score** ``S(pi, P)``: the sum of Kendall-τ distances between a
  permutation ``pi`` and every permutation of a set ``P``;
* the **generalized Kemeny score** ``K(r, R)``: the sum of generalized
  Kendall-τ distances between a ranking with ties ``r`` and every ranking of
  a set ``R``.

An *optimal consensus* minimises the (generalized) Kemeny score over all
possible rankings (with ties).

This module provides both scores, an efficient implementation of ``K`` based
on the pairwise weight matrices (so that scoring a candidate consensus does
not require re-reading the whole dataset), and the per-pair cost
decomposition used by several algorithms.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .distances import (
    generalized_kendall_tau_distance,
    kendall_tau_distance,
)
from .pairwise import PairwiseWeights
from .ranking import Ranking

__all__ = [
    "kemeny_score",
    "generalized_kemeny_score",
    "generalized_kemeny_score_from_weights",
    "score_of_single_bucket",
    "trivial_upper_bound",
]


def kemeny_score(pi: Ranking, rankings: Sequence[Ranking]) -> int:
    """Classical Kemeny score ``S`` of a permutation against a set of permutations.

    All rankings (including ``pi``) must be permutations over the same
    elements.
    """
    return sum(kendall_tau_distance(pi, sigma) for sigma in rankings)


def generalized_kemeny_score(r: Ranking, rankings: Sequence[Ranking]) -> int:
    """Generalized Kemeny score ``K`` of a ranking with ties against a dataset.

    ``K(r, R) = sum_{s in R} G(r, s)`` where ``G`` is the generalized
    Kendall-τ distance with unit costs (Section 2.2).
    """
    return sum(generalized_kendall_tau_distance(r, s) for s in rankings)


def generalized_kemeny_score_from_weights(r: Ranking, weights: PairwiseWeights) -> int:
    """Generalized Kemeny score computed from pre-computed pairwise weights.

    For a candidate consensus ``r`` the score decomposes over unordered
    element pairs ``{a, b}``:

    * if ``a`` is before ``b`` in ``r``, the pair costs ``w(b before a) +
      w(a tied b)`` — one disagreement for every input ranking that orders
      the pair the other way or ties it;
    * symmetrically if ``b`` is before ``a``;
    * if ``a`` and ``b`` are tied in ``r``, the pair costs ``w(a before b) +
      w(b before a)`` — one disagreement for every input ranking that does
      not tie the pair.

    This runs in O(n²) independently of the number of input rankings and is
    the scoring routine used by the search-based algorithms.
    """
    elements = weights.elements
    index_of = weights.index_of
    positions = np.fromiter(
        (r.position_of(element) for element in elements),
        dtype=np.int64,
        count=len(elements),
    )
    del index_of  # positions are already aligned with the weight matrices
    before = weights.before_matrix
    tied = weights.tied_matrix

    n = len(elements)
    if n < 2:
        return 0
    pos_i = positions[:, None]
    pos_j = positions[None, :]
    # a-before-b in the consensus: cost = w[b before a] + w[a tied b]
    cost_before = before.T + tied
    # a-tied-b in the consensus: cost = w[a before b] + w[b before a]
    cost_tied = before + before.T
    upper = np.triu_indices(n, k=1)
    consensus_before = (pos_i < pos_j)[upper]
    consensus_after = (pos_i > pos_j)[upper]
    consensus_tied = (pos_i == pos_j)[upper]
    total = (
        np.sum(cost_before[upper][consensus_before])
        + np.sum(cost_before.T[upper][consensus_after])
        + np.sum(cost_tied[upper][consensus_tied])
    )
    return int(total)


def score_of_single_bucket(weights: PairwiseWeights) -> int:
    """Score of the consensus that ties every element in one bucket.

    Every pair costs one disagreement per input ranking that does not tie
    it.  This is the degenerate solution the classical Kendall-τ distance
    would (wrongly) consider optimal, mentioned in Section 2.2.
    """
    before = weights.before_matrix
    n = before.shape[0]
    upper = np.triu_indices(n, k=1)
    return int(np.sum(before[upper] + before.T[upper]))


def trivial_upper_bound(rankings: Sequence[Ranking]) -> int:
    """A valid upper bound on the optimal generalized Kemeny score.

    The best input ranking (Pick-a-Perm with the de-randomized choice,
    Section 3.2) is a 2-approximation, so its score upper-bounds twice the
    optimum; the bound returned here is simply its score, which is an upper
    bound on the optimal score since the optimum minimises over a superset.
    """
    if not rankings:
        return 0
    return min(generalized_kemeny_score(candidate, rankings) for candidate in rankings)
