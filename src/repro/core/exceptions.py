"""Exception hierarchy for the rank-aggregation-with-ties library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch any library failure with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class InvalidRankingError(ReproError, ValueError):
    """Raised when a ranking-with-ties is structurally invalid.

    Examples include empty buckets, duplicated elements across buckets, or
    an empty ranking where one is not allowed.
    """


class DomainMismatchError(ReproError, ValueError):
    """Raised when two rankings (or a ranking and a dataset) are compared
    but are not defined over the same set of elements.

    Most of the paper's machinery (distances, Kemeny scores, aggregation
    algorithms) assumes the input rankings are *complete*, i.e. defined over
    the same universe of elements.  Datasets which are not complete must be
    normalized first (projection or unification, Section 5.1 of the paper).
    """


class EmptyDatasetError(ReproError, ValueError):
    """Raised when an operation requires a dataset with at least one ranking."""


class DatasetMutationError(ReproError, RuntimeError):
    """Raised when an (immutable) dataset's content was mutated behind its back.

    :class:`~repro.datasets.Dataset` memoizes its preparation plan and its
    content fingerprint on the instance; both become silently wrong if a
    caller rebinds or mutates the underlying rankings sequence (e.g. via
    ``object.__setattr__``).  The coherence guards raise this error instead
    of serving a stale plan — callers who need mutability should use
    :class:`~repro.core.live.LiveDataset`.
    """


class AlgorithmNotApplicableError(ReproError, ValueError):
    """Raised when an algorithm is asked to aggregate an input it cannot handle.

    For instance the permutation-only algorithms (Chanas, branch-and-bound)
    raise this error when handed rankings containing ties unless the caller
    explicitly asked for the ties to be broken.
    """


class TimeBudgetExceeded(ReproError, RuntimeError):
    """Raised internally when an algorithm exceeds its time budget.

    The experiment runner converts this into a "no result" entry, matching
    the paper's protocol of capping each algorithm run (Section 6.2.4).
    """


class SolverUnavailableError(ReproError, RuntimeError):
    """Raised when a required optimization backend (LP/MILP) is unavailable."""
