"""Dense array kernels for rankings with ties.

The pure-object code paths of :mod:`repro.core` (and the local-search
algorithms built on them) are dominated by per-element Python work: walking
bucket lists, dictionary lookups, one NumPy call per element or per pair of
rankings.  This module provides the *dense* representation those hot paths
share, in the spirit of replacing pointer-chasing with batched geometric /
array computation:

* a :class:`~repro.core.ranking.Ranking` is encoded as an **int bucket-id
  vector**: entry ``i`` is the bucket index of the ``i``-th element of the
  canonically sorted domain (see :meth:`Ranking.dense_positions`, cached on
  the immutable ranking);
* a whole dataset is encoded as one **(m × n) position tensor** stacking
  those vectors (:func:`position_tensor`);
* pairwise statistics are computed from the tensor with **chunked tensor
  ops**: :func:`pairwise_order_counts` builds the before/tied matrices of
  :class:`~repro.core.pairwise.PairwiseWeights`, and
  :func:`pairwise_distance_tensor` builds the all-pairs generalized
  Kendall-τ distance matrix through BLAS matrix products instead of ``m²``
  independent distance calls.

All kernels are exact: they count integer (dis)agreements, using float64
only as an exact carrier for BLAS (every intermediate value is an integer
far below 2**53).  Chunk sizes bound peak memory so arbitrarily large
datasets stream through fixed-size blocks.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .exceptions import DomainMismatchError, EmptyDatasetError
from .ranking import Element, Ranking

__all__ = [
    "position_tensor",
    "pairwise_order_counts",
    "positional_counts",
    "disagreement_counts",
    "pairwise_distance_tensor",
    "distances_to_stack",
]

# Cap on the number of n×n comparison-matrix cells materialised at once by
# the chunked kernels (~32 MiB of float64 per plane at the default).
DEFAULT_BLOCK_CELLS = 4_000_000


def position_tensor(rankings: Sequence[Ranking]) -> tuple[list[Element], np.ndarray]:
    """Encode a complete dataset as ``(elements, P)`` with ``P`` of shape (m, n).

    ``elements`` is the common domain in canonical sorted order and
    ``P[k, i]`` is the bucket index of ``elements[i]`` in ``rankings[k]``.
    Per-ranking encodings are cached on the (immutable) rankings, so
    repeated tensor builds over the same rankings are free.

    Raises :class:`EmptyDatasetError` on an empty dataset and
    :class:`DomainMismatchError` when the rankings do not share a domain.
    """
    if not rankings:
        raise EmptyDatasetError("cannot build a position tensor from an empty dataset")
    domain = rankings[0].domain
    for ranking in rankings[1:]:
        if ranking.domain != domain:
            raise DomainMismatchError(
                "all rankings must be over the same elements; "
                "normalize the dataset first (projection or unification)"
            )
    elements = list(rankings[0].sorted_elements())
    n = len(elements)
    tensor = np.empty((len(rankings), n), dtype=np.int64)
    for row, ranking in enumerate(rankings):
        tensor[row] = ranking.dense_positions()
    return elements, tensor


def pairwise_order_counts(
    positions: np.ndarray, *, block_cells: int = DEFAULT_BLOCK_CELLS
) -> tuple[np.ndarray, np.ndarray]:
    """Before/tied count matrices of a (m × n) position tensor.

    Returns ``(before, tied)`` where ``before[i, j]`` counts the rankings
    placing element ``i`` strictly before element ``j`` and ``tied[i, j]``
    the rankings tying the pair (symmetric, zero diagonal).

    Parameters
    ----------
    positions:
        (m × n) tensor of dense bucket positions, one row per ranking.
    block_cells:
        Rankings are processed in blocks so that at most this many
        comparison cells are materialised at a time (bounds peak memory).
    """
    m, n = positions.shape
    before = np.zeros((n, n), dtype=np.int64)
    tied = np.zeros((n, n), dtype=np.int64)
    if n == 0 or m == 0:
        return before, tied
    rows = max(1, block_cells // (n * n))
    for start in range(0, m, rows):
        block = positions[start : start + rows]
        left = block[:, :, None]
        right = block[:, None, :]
        before += (left < right).sum(axis=0)
        tied += (left == right).sum(axis=0)
    np.fill_diagonal(tied, 0)
    return before, tied


def positional_counts(positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-ranking positional statistics of a (m × n) position tensor.

    Returns ``(before_counts, bucket_sizes)`` where ``before_counts[k, i]``
    is the number of elements placed *strictly before* element ``i`` in
    ranking ``k`` (the paper's position-with-ties minus one, Section 4.1.3)
    and ``bucket_sizes[k, i]`` the size of the bucket element ``i`` sits in.
    These are the sufficient statistics of the positional algorithms
    (BordaCount, CopelandMethod): Borda positions are
    ``before_counts + 1``, Copeland's elements-after are
    ``n − bucket_sizes − before_counts``.

    Fully vectorised: one flat ``np.bincount`` over row-offset bucket ids
    plus a row-wise cumulative sum — no per-ranking Python loop.

    Parameters
    ----------
    positions:
        (m × n) tensor of dense bucket positions, one row per ranking.
    """
    m, n = positions.shape
    if m == 0 or n == 0:
        empty = np.zeros((m, n), dtype=np.int64)
        return empty, empty.copy()
    num_buckets = int(positions.max()) + 1
    # One shared bincount: offset each row into its own id range.
    offsets = np.arange(m, dtype=np.int64)[:, None] * num_buckets
    flat = (positions + offsets).ravel()
    counts = np.bincount(flat, minlength=m * num_buckets).reshape(m, num_buckets)
    starts = np.zeros((m, num_buckets), dtype=np.int64)
    np.cumsum(counts[:, :-1], axis=1, out=starts[:, 1:])
    before_counts = np.take_along_axis(starts, positions, axis=1)
    bucket_sizes = np.take_along_axis(counts, positions, axis=1)
    return before_counts, bucket_sizes


def disagreement_counts(pos_r: np.ndarray, pos_s: np.ndarray) -> tuple[int, int]:
    """Pair-disagreement counts between two bucket-position vectors.

    Returns ``(inverted, tied_in_one)``: the number of unordered element
    pairs ordered in opposite ways, and the number tied in exactly one of
    the two rankings.  Works on the full comparison matrices (each pair is
    seen a bounded number of times and the count corrected), avoiding the
    ``np.triu_indices`` index materialisation entirely.

    Parameters
    ----------
    pos_r, pos_s:
        Dense bucket-position vectors of the two rankings, over the same
        element order.
    """
    n = pos_r.shape[0]
    if n < 2:
        return 0, 0
    r_less = pos_r[:, None] < pos_r[None, :]
    s_less = pos_s[:, None] < pos_s[None, :]
    # An inverted pair {i, j} matches exactly one cell of (r says i<j AND
    # s says j<i), so the full-matrix count needs no halving.
    inverted = int(np.count_nonzero(r_less & s_less.T))
    r_tied = pos_r[:, None] == pos_r[None, :]
    s_tied = pos_s[:, None] == pos_s[None, :]
    # The xor matrix is symmetric with a zero diagonal: halve the count.
    tied_in_one = int(np.count_nonzero(r_tied ^ s_tied)) // 2
    return inverted, tied_in_one


def _comparison_planes(
    block: np.ndarray, *, need_less: bool = True
) -> tuple[np.ndarray | None, np.ndarray, np.ndarray, np.ndarray]:
    """Flattened comparison planes of a (b × n) position block.

    Returns ``(less, less_t, equal, equal_sums)`` where ``less[k]`` is the
    flattened n×n strictly-less matrix of ranking ``k``, ``less_t[k]`` its
    transpose and ``equal_sums[k]`` the total number of equal cells
    (diagonal included; it cancels in the xor identity below).  The floats
    are exact carriers here: every value is 0/1 and every downstream sum is
    an integer within the dtype's exact-integer range.

    ``need_less=False`` skips the untransposed plane, which right-hand
    blocks of the pairwise products never consume.
    """
    b, n = block.shape
    left = block[:, :, None]
    right = block[:, None, :]
    less = left < right
    equal = left == right
    dtype = _exact_blas_dtype(n)
    less_flat = less.reshape(b, n * n).astype(dtype) if need_less else None
    less_t_flat = np.swapaxes(less, 1, 2).reshape(b, n * n).astype(dtype)
    equal_flat = equal.reshape(b, n * n).astype(dtype)
    return less_flat, less_t_flat, equal_flat, equal_flat.sum(axis=1, dtype=np.float64)


def _exact_blas_dtype(n: int) -> type:
    """Smallest float dtype that carries the 0/1 dot products exactly.

    Every dot product sums at most n² terms in {0, 1}, so float32 is exact
    while n² stays below its 2**24 integer ceiling (with margin); beyond
    that, fall back to float64 (exact up to 2**53).
    """
    return np.float32 if n * n <= (1 << 23) else np.float64


def pairwise_distance_tensor(
    positions: np.ndarray, *, block_cells: int = DEFAULT_BLOCK_CELLS
) -> np.ndarray:
    """All-pairs generalized Kendall-τ distance matrix of a position tensor.

    For each pair of rankings ``(a, b)``,

    * the inverted-pair count is ``Σ_ij less_a[i, j] · less_b[j, i]``, and
    * the tied-in-exactly-one count is
      ``(Σ equal_a + Σ equal_b − 2 Σ_ij equal_a[i, j] · equal_b[i, j]) / 2``
      (inclusion–exclusion on the xor of the two tie matrices),

    so the whole m×m matrix reduces to two (m, n²) × (n², m) matrix
    products evaluated by BLAS — all pairs at once instead of ``m²``
    independent distance calls.

    Parameters
    ----------
    positions:
        (m × n) tensor of dense bucket positions, one row per ranking.
    block_cells:
        Blocks of rankings bound peak memory to ``O(block_cells)`` cells
        per comparison plane.
    """
    m, n = positions.shape
    out = np.zeros((m, m), dtype=np.int64)
    if m < 2 or n < 2:
        return out
    rows = max(1, block_cells // (n * n))
    blocks = [(start, min(start + rows, m)) for start in range(0, m, rows)]
    for block_index, (a0, a1) in enumerate(blocks):
        less_a, less_t_a, equal_a, eq_sum_a = _comparison_planes(positions[a0:a1])
        for b0, b1 in blocks[block_index:]:  # the lower triangle follows by symmetry
            if (b0, b1) == (a0, a1):
                less_t_b, equal_b, eq_sum_b = less_t_a, equal_a, eq_sum_a
            else:
                _, less_t_b, equal_b, eq_sum_b = _comparison_planes(
                    positions[b0:b1], need_less=False
                )
            inverted = less_a @ less_t_b.T
            equal_both = equal_a @ equal_b.T
            tied_in_one = (eq_sum_a[:, None] + eq_sum_b[None, :] - 2.0 * equal_both) / 2.0
            distances = np.rint(inverted + tied_in_one).astype(np.int64)
            out[a0:a1, b0:b1] = distances
            out[b0:b1, a0:a1] = distances.T
    np.fill_diagonal(out, 0)
    return out


def distances_to_stack(
    pos: np.ndarray, positions: np.ndarray, *, block_cells: int = DEFAULT_BLOCK_CELLS
) -> np.ndarray:
    """Generalized Kendall-τ distances of one ranking against a whole stack.

    ``pos`` is a single bucket-position vector and ``positions`` a (m × n)
    tensor over the same element order; returns the length-m int64 vector of
    distances.  Same matrix-product identities as
    :func:`pairwise_distance_tensor`, restricted to one row; ``block_cells``
    bounds the comparison cells materialised per block.
    """
    m, n = positions.shape
    out = np.zeros(m, dtype=np.int64)
    if m == 0 or n < 2:
        return out
    dtype = _exact_blas_dtype(n)
    r_less = (pos[:, None] < pos[None, :]).reshape(n * n).astype(dtype)
    r_equal = (pos[:, None] == pos[None, :]).reshape(n * n).astype(dtype)
    r_eq_sum = float(r_equal.sum(dtype=np.float64))
    rows = max(1, block_cells // (n * n))
    for start in range(0, m, rows):
        block = positions[start : start + rows]
        _, less_t, equal, eq_sums = _comparison_planes(block, need_less=False)
        inverted = less_t @ r_less
        equal_both = equal @ r_equal
        tied_in_one = (r_eq_sum + eq_sums - 2.0 * equal_both) / 2.0
        out[start : start + block.shape[0]] = np.rint(inverted + tied_in_one).astype(
            np.int64
        )
    return out
