"""Core data model: rankings with ties, distances, Kemeny scores, similarity.

This subpackage implements the formal background of Section 2 of the paper:
bucket orders (:class:`~repro.core.ranking.Ranking`), the classical and
generalized Kendall-τ distances, the (generalized) Kemeny score, the
Kendall-τ correlation / dataset similarity of Section 6.2.2, and the
pairwise weight matrices shared by most algorithms.
"""

from .arrays import (
    disagreement_counts,
    distances_to_stack,
    pairwise_distance_tensor,
    pairwise_order_counts,
    position_tensor,
    positional_counts,
)
from .correlation import dataset_similarity, kendall_tau_correlation
from .distances import (
    generalized_kendall_tau_distance,
    generalized_kendall_tau_distance_reference,
    kendall_tau_distance,
    pairwise_distance_matrix,
    pairwise_distance_matrix_reference,
    spearman_footrule_distance,
    weighted_generalized_kendall_tau_distance,
)
from .exceptions import (
    AlgorithmNotApplicableError,
    DatasetMutationError,
    DomainMismatchError,
    EmptyDatasetError,
    InvalidRankingError,
    ReproError,
    SolverUnavailableError,
    TimeBudgetExceeded,
)
from .journal import (
    JournalCorruptionError,
    JournalError,
    LiveJournal,
    ReplayResult,
    journal_exists,
    replay_journal,
)
from .kemeny import (
    generalized_kemeny_score,
    generalized_kemeny_score_from_weights,
    generalized_kemeny_scores_of_stack,
    kemeny_score,
    score_of_single_bucket,
    trivial_upper_bound,
)
from .live import LiveDataset
from .pairwise import PairwiseWeights
from .prepared import (
    PreparedDataset,
    cached_plan,
    clear_plan_cache,
    plan_build_count,
    plan_cache_limit,
    prepare_rankings,
    rankings_fingerprint,
    set_plan_cache_limit,
    store_plan,
)
from .ranking import BucketVector, Element, Ranking

__all__ = [
    "Ranking",
    "BucketVector",
    "Element",
    "PairwiseWeights",
    "kendall_tau_distance",
    "generalized_kendall_tau_distance",
    "generalized_kendall_tau_distance_reference",
    "weighted_generalized_kendall_tau_distance",
    "spearman_footrule_distance",
    "pairwise_distance_matrix",
    "pairwise_distance_matrix_reference",
    "position_tensor",
    "pairwise_order_counts",
    "positional_counts",
    "pairwise_distance_tensor",
    "distances_to_stack",
    "disagreement_counts",
    "PreparedDataset",
    "LiveDataset",
    "LiveJournal",
    "ReplayResult",
    "replay_journal",
    "journal_exists",
    "JournalError",
    "JournalCorruptionError",
    "prepare_rankings",
    "rankings_fingerprint",
    "cached_plan",
    "store_plan",
    "plan_build_count",
    "clear_plan_cache",
    "plan_cache_limit",
    "set_plan_cache_limit",
    "kemeny_score",
    "generalized_kemeny_score",
    "generalized_kemeny_score_from_weights",
    "generalized_kemeny_scores_of_stack",
    "score_of_single_bucket",
    "trivial_upper_bound",
    "kendall_tau_correlation",
    "dataset_similarity",
    "ReproError",
    "InvalidRankingError",
    "DomainMismatchError",
    "DatasetMutationError",
    "EmptyDatasetError",
    "AlgorithmNotApplicableError",
    "TimeBudgetExceeded",
    "SolverUnavailableError",
]
