"""Core data model: rankings with ties, distances, Kemeny scores, similarity.

This subpackage implements the formal background of Section 2 of the paper:
bucket orders (:class:`~repro.core.ranking.Ranking`), the classical and
generalized Kendall-τ distances, the (generalized) Kemeny score, the
Kendall-τ correlation / dataset similarity of Section 6.2.2, and the
pairwise weight matrices shared by most algorithms.
"""

from .arrays import (
    disagreement_counts,
    distances_to_stack,
    pairwise_distance_tensor,
    pairwise_order_counts,
    position_tensor,
)
from .correlation import dataset_similarity, kendall_tau_correlation
from .distances import (
    generalized_kendall_tau_distance,
    generalized_kendall_tau_distance_reference,
    kendall_tau_distance,
    pairwise_distance_matrix,
    pairwise_distance_matrix_reference,
    spearman_footrule_distance,
    weighted_generalized_kendall_tau_distance,
)
from .exceptions import (
    AlgorithmNotApplicableError,
    DomainMismatchError,
    EmptyDatasetError,
    InvalidRankingError,
    ReproError,
    SolverUnavailableError,
    TimeBudgetExceeded,
)
from .kemeny import (
    generalized_kemeny_score,
    generalized_kemeny_score_from_weights,
    kemeny_score,
    score_of_single_bucket,
    trivial_upper_bound,
)
from .pairwise import PairwiseWeights
from .ranking import BucketVector, Element, Ranking

__all__ = [
    "Ranking",
    "BucketVector",
    "Element",
    "PairwiseWeights",
    "kendall_tau_distance",
    "generalized_kendall_tau_distance",
    "generalized_kendall_tau_distance_reference",
    "weighted_generalized_kendall_tau_distance",
    "spearman_footrule_distance",
    "pairwise_distance_matrix",
    "pairwise_distance_matrix_reference",
    "position_tensor",
    "pairwise_order_counts",
    "pairwise_distance_tensor",
    "distances_to_stack",
    "disagreement_counts",
    "kemeny_score",
    "generalized_kemeny_score",
    "generalized_kemeny_score_from_weights",
    "score_of_single_bucket",
    "trivial_upper_bound",
    "kendall_tau_correlation",
    "dataset_similarity",
    "ReproError",
    "InvalidRankingError",
    "DomainMismatchError",
    "EmptyDatasetError",
    "AlgorithmNotApplicableError",
    "TimeBudgetExceeded",
    "SolverUnavailableError",
]
