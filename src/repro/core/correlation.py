"""Kendall-τ correlation and dataset similarity.

Section 6.2.2 of the paper measures how similar the rankings of a dataset
are using the Kendall-τ rank correlation coefficient extended to rankings
with ties (equation 4):

    τ(r1, r2) = ( n(n-1)/2 - 2·G(r1, r2) ) / ( n(n-1)/2 )

and the *intrinsic similarity* of a dataset (equation 5), the average
correlation over all pairs of input rankings:

    s(R) = 2 / (m(m-1)) · Σ_{i<j} τ(r_i, r_j)

The correlation ranges from 1 (identical rankings) down to -1 (one ranking
is the exact reverse permutation of the other and no ties are involved);
uniformly random rankings with ties have an expected similarity slightly
below zero (≈ -0.04 for the sizes used in the paper, cf. Section 7.2).
"""

from __future__ import annotations

from collections.abc import Sequence

from .distances import (
    generalized_kendall_tau_distance,
    max_pair_count,
    pairwise_distance_matrix,
)
from .exceptions import EmptyDatasetError
from .ranking import Ranking

__all__ = ["kendall_tau_correlation", "dataset_similarity"]


def kendall_tau_correlation(r1: Ranking, r2: Ranking) -> float:
    """Kendall-τ rank correlation coefficient between two rankings with ties.

    Implements equation (4) of the paper.  Returns 1.0 for identical
    rankings, negative values for strongly disagreeing rankings.  Rankings
    over fewer than two elements are perfectly correlated by convention.

    Parameters
    ----------
    r1, r2:
        The two rankings to correlate (over the same elements).
    """
    n = len(r1)
    pairs = max_pair_count(n)
    if pairs == 0:
        return 1.0
    distance = generalized_kendall_tau_distance(r1, r2)
    return (pairs - 2.0 * distance) / pairs


def dataset_similarity(rankings: Sequence[Ranking]) -> float:
    """Intrinsic similarity ``s(R)`` of a dataset (equation 5 of the paper).

    The average Kendall-τ correlation over all unordered pairs of input
    rankings.  A dataset with a single ranking has similarity 1.0 by
    convention (it perfectly agrees with itself).
    """
    m = len(rankings)
    if m == 0:
        raise EmptyDatasetError("cannot compute the similarity of an empty dataset")
    if m == 1:
        return 1.0
    pairs = max_pair_count(len(rankings[0]))
    if pairs == 0:
        return 1.0
    # τ over every pair at once, from the batched all-pairs distance matrix.
    distances = pairwise_distance_matrix(rankings)
    correlations = (pairs - 2.0 * distances) / pairs
    # Row sums include the diagonal (τ = 1) and count every pair twice.
    total = (correlations.sum() - m) / 2.0
    return 2.0 * total / (m * (m - 1))
