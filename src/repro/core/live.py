"""LiveDataset: streaming writes with delta-maintained pairwise weights.

Everything else in the library treats a dataset as immutable: any change
rebuilds the :class:`~repro.core.prepared.PreparedDataset` plan and re-runs
aggregation from scratch, paying the O(m·n²) pairwise construction per
write.  A :class:`LiveDataset` is the mutable counterpart built for write
traffic:

* ``add_ranking`` / ``remove_ranking`` / ``update_ranking`` maintain the
  before/tied count matrices by **delta updates** — one O(n²) comparison
  plane per touched ranking, independent of the dataset size ``m`` —
  instead of recounting all ``m`` rankings;
* the content fingerprint is kept coherent across every mutation (the
  canonical per-ranking text lines are cached, so re-digesting is O(total
  text), never O(m·n²));
* :meth:`snapshot` packages the maintained state as an ordinary immutable
  :class:`~repro.datasets.Dataset` whose memoized preparation plan is
  *adopted*, not rebuilt — the whole existing engine / portfolio / service
  stack consumes live state unchanged, and the handed-out arrays are
  frozen copies so later mutations can never corrupt an earlier snapshot.

The maintained state is **byte-identical** to a from-scratch rebuild after
any mutation sequence: the delta planes are exactly the per-ranking terms
of :func:`repro.core.arrays.pairwise_order_counts`'s sum, added and
subtracted in int64 (associative, no rounding), and the property suite in
``tests/core/test_live.py`` asserts equality of weights, fingerprints and
consensus trajectories against fresh preparation.

The domain is fixed at construction: every ranking, initial or added
later, must cover the same elements (the completeness requirement all
aggregation algorithms share).  Incomplete streams should be normalized
first (:mod:`repro.datasets.normalization`).
"""

from __future__ import annotations

import hashlib
import time
from collections.abc import Iterable, Iterator, Mapping
from typing import Any

import numpy as np

from .arrays import position_tensor
from .exceptions import DomainMismatchError, EmptyDatasetError
from .pairwise import PairwiseWeights
from .prepared import PreparedDataset, store_plan
from .ranking import Element, Ranking

__all__ = ["LiveDataset"]


class LiveDataset:
    """A mutable dataset maintaining its pairwise weights under writes.

    Parameters
    ----------
    rankings:
        The initial rankings (at least one; they establish the fixed
        element domain every later write must cover).
    name:
        Human-readable identifier, carried onto every snapshot.
    metadata:
        Free-form mapping copied onto every snapshot (the snapshot adds a
        ``generation`` entry of its own).
    """

    def __init__(
        self,
        rankings: Iterable[Ranking],
        name: str = "live",
        metadata: Mapping[str, Any] | None = None,
    ):
        initial = list(rankings)
        if not initial:
            raise EmptyDatasetError(
                "a LiveDataset needs at least one initial ranking to fix its domain"
            )
        self.name = name
        self.metadata: dict[str, Any] = dict(metadata or {})
        elements, _ = position_tensor(initial)  # validates the shared domain
        self._elements: list[Element] = elements
        self._domain: frozenset[Element] = frozenset(elements)
        # ``None`` entries are lazy (line-backed adoption, see
        # :meth:`adopt_lines`): the ranking is parsed from ``_lines`` and
        # the vector derived from it only when the position is touched.
        self._rankings: list[Ranking | None] = list(initial)
        # Per-ranking dense bucket-id vectors (read-only, cached on the
        # immutable rankings) — the rows snapshots stack into the tensor.
        self._vectors: list[np.ndarray | None] = [
            ranking.dense_positions() for ranking in initial
        ]
        n = len(elements)
        # Writable master matrices; snapshots receive frozen copies.
        self._before = np.zeros((n, n), dtype=np.int64)
        self._tied = np.zeros((n, n), dtype=np.int64)
        # Per-ranking comparison planes (bool, diagonal cleared), built once
        # per insertion so every later delta is pure in-place arithmetic.
        # Entries may be ``None`` (adopted state, see :meth:`adopt`); they
        # are recomputed from the cached vectors on demand.
        self._planes: list[tuple[np.ndarray, np.ndarray] | None] = [
            self._plane(vector) for vector in self._vectors
        ]
        for plane in self._planes:
            self._apply_delta(plane, +1)
        # Canonical text lines back the fingerprint; formatting is deferred
        # out of the mutation hot path (None = not formatted yet).
        self._lines: list[str | None] = [None] * len(initial)
        self._generation = 0
        self._fingerprint: str | None = None
        self._snapshot: Any = None  # Dataset of the current generation, lazily built
        self._last_delta_seconds = 0.0

    @classmethod
    def adopt(
        cls,
        rankings: Iterable[Ranking],
        before: np.ndarray,
        tied: np.ndarray,
        *,
        name: str = "live",
        metadata: Mapping[str, Any] | None = None,
        generation: int = 0,
    ) -> "LiveDataset":
        """Wrap already-maintained pairwise state without recounting it.

        The recovery path of :mod:`repro.core.journal`: a snapshot stores
        the delta-maintained before/tied matrices, so rebuilding the live
        dataset must not pay the O(m·n²) per-ranking plane construction
        ``__init__`` performs.  The matrices are copied (writable masters),
        and the per-ranking comparison planes start *lazy* — recomputed
        from the cached position vectors only when a ranking is later
        removed or replaced.  Because planes are a pure function of the
        vectors, the adopted state stays byte-identical to continuous
        maintenance.

        Parameters
        ----------
        rankings:
            The rankings the matrices were counted from, in dataset order.
        before, tied:
            The (n × n) int64 before/tied count matrices.
        name:
            Human-readable identifier, carried onto every snapshot.
        metadata:
            Free-form mapping copied onto every snapshot.
        generation:
            Mutation counter to resume from (the journal's record count).
        """
        initial = list(rankings)
        if not initial:
            raise EmptyDatasetError(
                "a LiveDataset needs at least one initial ranking to fix its domain"
            )
        dataset = object.__new__(cls)
        dataset.name = name
        dataset.metadata = dict(metadata or {})
        elements, _ = position_tensor(initial)  # validates the shared domain
        dataset._elements = elements
        dataset._domain = frozenset(elements)
        dataset._rankings = initial
        dataset._vectors = [ranking.dense_positions() for ranking in initial]
        n = len(elements)
        expected = (n, n)
        for matrix in (before, tied):
            if matrix.shape != expected:
                raise ValueError(
                    f"adopted matrix has shape {matrix.shape}, expected {expected}"
                )
        dataset._before = np.array(before, dtype=np.int64)
        dataset._tied = np.array(tied, dtype=np.int64)
        dataset._planes = [None] * len(initial)
        dataset._lines = [None] * len(initial)
        dataset._generation = generation
        dataset._fingerprint = None
        dataset._snapshot = None
        dataset._last_delta_seconds = 0.0
        return dataset

    @classmethod
    def adopt_lines(
        cls,
        lines: Iterable[str],
        elements: Iterable[Element],
        before: np.ndarray,
        tied: np.ndarray,
        *,
        name: str = "live",
        metadata: Mapping[str, Any] | None = None,
        generation: int = 0,
    ) -> "LiveDataset":
        """Adopt maintained state from canonical text lines, parsing lazily.

        The snapshot fast path of :mod:`repro.core.journal`: a snapshot
        carries the count matrices, the element domain and every ranking's
        canonical text line, so recovery needs to *parse* a ranking only
        when a later journal record actually touches its position.  The
        lines double as the fingerprint cache, which makes the adopted
        fingerprint byte-identical to continuous maintenance without
        materialising a single :class:`~repro.core.ranking.Ranking`.

        The caller vouches for consistency (the journal's snapshot is
        checksummed end to end); per-ranking domain validation happens on
        the lazy parse, exactly when a ranking is first needed.

        Parameters
        ----------
        lines:
            The canonical text lines (:meth:`line_at` format), in dataset
            order.
        elements:
            The fixed element domain, in canonical sorted order.
        before, tied:
            The (n × n) int64 before/tied count matrices.
        name:
            Human-readable identifier, carried onto every snapshot.
        metadata:
            Free-form mapping copied onto every snapshot.
        generation:
            Mutation counter to resume from (the journal's record count).
        """
        text = [str(line) for line in lines]
        if not text:
            raise EmptyDatasetError(
                "a LiveDataset needs at least one initial ranking to fix its domain"
            )
        dataset = object.__new__(cls)
        dataset.name = name
        dataset.metadata = dict(metadata or {})
        dataset._elements = list(elements)
        dataset._domain = frozenset(dataset._elements)
        dataset._rankings = [None] * len(text)
        dataset._vectors = [None] * len(text)
        n = len(dataset._elements)
        expected = (n, n)
        for matrix in (before, tied):
            if matrix.shape != expected:
                raise ValueError(
                    f"adopted matrix has shape {matrix.shape}, expected {expected}"
                )
        dataset._before = np.array(before, dtype=np.int64)
        dataset._tied = np.array(tied, dtype=np.int64)
        dataset._planes = [None] * len(text)
        dataset._lines = list(text)
        dataset._generation = generation
        dataset._fingerprint = None
        dataset._snapshot = None
        dataset._last_delta_seconds = 0.0
        return dataset

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def generation(self) -> int:
        """Mutation counter: increments on every successful write."""
        return self._generation

    @property
    def num_rankings(self) -> int:
        """Number of rankings currently in the dataset ``m``."""
        return len(self._rankings)

    @property
    def num_elements(self) -> int:
        """Number of elements ``n`` in the fixed domain."""
        return len(self._elements)

    @property
    def elements(self) -> list[Element]:
        """The fixed domain in canonical sorted order (copy)."""
        return list(self._elements)

    @property
    def rankings(self) -> tuple[Ranking, ...]:
        """The current rankings, in dataset order (immutable view)."""
        return tuple(
            self._ranking_at(index) for index in range(len(self._rankings))
        )

    @property
    def last_delta_seconds(self) -> float:
        """Wall-clock cost of the most recent delta update."""
        return self._last_delta_seconds

    def __len__(self) -> int:
        return len(self._rankings)

    def __iter__(self) -> Iterator[Ranking]:
        return iter(self.rankings)

    def __getitem__(self, index: int) -> Ranking:
        if index < 0:
            index += len(self._rankings)
        return self._ranking_at(index)

    def line_at(self, index: int) -> str:
        """The canonical text line of one ranking, formatted once and cached.

        The same cache backs :meth:`content_fingerprint`, so a caller that
        needs the serialization anyway (e.g. the write-ahead journal) does
        not pay for formatting twice.

        Parameters
        ----------
        index:
            Position of the ranking.
        """
        line = self._lines[index]
        if line is None:
            line = self._lines[index] = self._format(self._rankings[index])
        return line

    def content_fingerprint(self) -> str:
        """Digest of the current content (same canonical-text digest the
        engine's result cache and the plan cache key on), memoized per
        generation."""
        if self._fingerprint is None:
            lines = self._lines
            for index, line in enumerate(lines):
                if line is None:
                    lines[index] = self._format(self._rankings[index])
            text = "\n".join(lines)
            self._fingerprint = hashlib.sha256(text.encode("utf-8")).hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------ #
    # Mutations (each O(n²) in the touched ranking, independent of m)
    # ------------------------------------------------------------------ #
    def add_ranking(self, ranking: Ranking, index: int | None = None) -> int:
        """Insert one ranking, delta-updating the maintained weights.

        Parameters
        ----------
        ranking:
            The ranking to add; must cover exactly the dataset's domain.
        index:
            Insertion position (defaults to appending at the end).

        Returns
        -------
        int
            The position the ranking now occupies.
        """
        vector = self._validated_vector(ranking)
        start = time.perf_counter()
        if index is None:
            index = len(self._rankings)
        plane = self._plane(vector)
        self._apply_delta(plane, +1)
        self._rankings.insert(index, ranking)
        self._vectors.insert(index, vector)
        self._planes.insert(index, plane)
        self._lines.insert(index, None)
        self._bump(start)
        return index

    def remove_ranking(self, index: int) -> Ranking:
        """Remove the ranking at ``index``, delta-updating the weights.

        The last ranking cannot be removed (pairwise weights of an empty
        dataset are undefined); :class:`EmptyDatasetError` is raised
        instead.

        Parameters
        ----------
        index:
            Position of the ranking to remove.
        """
        if len(self._rankings) == 1:
            raise EmptyDatasetError(
                f"cannot remove the last ranking of LiveDataset {self.name!r}"
            )
        removed = self._ranking_at(index)  # IndexError before any state change
        start = time.perf_counter()
        self._apply_delta(self._plane_at(index), -1)
        del self._rankings[index]
        del self._vectors[index]
        del self._planes[index]
        del self._lines[index]
        self._bump(start)
        return removed

    def update_ranking(self, index: int, ranking: Ranking) -> Ranking:
        """Replace the ranking at ``index``; returns the previous one.

        A single remove+add delta: two O(n²) plane updates, never a
        rebuild.

        Parameters
        ----------
        index:
            Position of the ranking to replace.
        ranking:
            The replacement; must cover exactly the dataset's domain.
        """
        vector = self._validated_vector(ranking)
        previous = self._ranking_at(index)  # IndexError before any state change
        start = time.perf_counter()
        plane = self._plane(vector)
        self._apply_delta(self._plane_at(index), -1)
        self._apply_delta(plane, +1)
        self._rankings[index] = ranking
        self._vectors[index] = vector
        self._planes[index] = plane
        self._lines[index] = None
        self._bump(start)
        return previous

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Any:
        """The current content as an ordinary immutable ``Dataset``.

        The snapshot's preparation plan adopts the delta-maintained
        weights (frozen copies — later mutations cannot touch them), its
        fingerprint is the live fingerprint, and its metadata records the
        live ``generation``, so downstream consumers (engine, portfolio,
        service frontend) use it exactly like any other dataset.  Memoized
        per generation: repeated calls between writes return the same
        object.
        """
        if self._snapshot is not None:
            return self._snapshot
        # Imported lazily: repro.datasets imports repro.core at module load.
        from ..datasets.dataset import Dataset

        start = time.perf_counter()
        rankings = self.rankings
        positions = np.vstack(
            [self._vector_at(index) for index in range(len(rankings))]
        )
        before = self._before.copy()
        tied = self._tied.copy()
        weights = PairwiseWeights.from_state(
            self._elements, positions, before, tied, len(rankings)
        )
        fingerprint = self.content_fingerprint()
        plan = PreparedDataset.from_weights(
            rankings,
            weights,
            fingerprint=fingerprint,
            prepare_seconds=self._last_delta_seconds + time.perf_counter() - start,
        )
        metadata = dict(self.metadata)
        metadata["generation"] = self._generation
        dataset = Dataset(rankings, name=self.name, metadata=metadata)
        object.__setattr__(dataset, "_content_fingerprint", fingerprint)
        object.__setattr__(dataset, "_plan", plan)
        # Publish the adopted plan under its fingerprint so sibling dataset
        # instances (unpickled copies, re-parsed files) reuse it; the LRU
        # bound of the plan cache is what keeps write churn from leaking.
        store_plan(fingerprint, plan)
        self._snapshot = dataset
        return dataset

    def prepared(self) -> PreparedDataset:
        """The current generation's preparation plan (adopted, not rebuilt)."""
        return self.snapshot().prepared()

    def weights(self) -> PairwiseWeights:
        """The current generation's pairwise weights (frozen snapshot view)."""
        return self.prepared().weights

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _validated_vector(self, ranking: Ranking) -> np.ndarray:
        if ranking.domain != self._domain:
            raise DomainMismatchError(
                f"ranking is over a different domain than LiveDataset {self.name!r}; "
                "all writes must cover the dataset's fixed element set "
                "(normalize first: projection or unification)"
            )
        return ranking.dense_positions()

    def _ranking_at(self, index: int) -> Ranking:
        """The ranking at ``index``, parsed from its text line on demand.

        Line-backed datasets (:meth:`adopt_lines`) hold canonical text
        until a position is actually needed; parsing validates the domain
        exactly as a direct construction would.
        """
        ranking = self._rankings[index]
        if ranking is None:
            # Imported lazily: repro.datasets imports repro.core at load.
            from ..datasets.io import parse_ranking

            ranking = parse_ranking(self._lines[index])
            if ranking.domain != self._domain:
                raise DomainMismatchError(
                    f"adopted line {index} of LiveDataset {self.name!r} covers "
                    "a different domain than the dataset's fixed element set"
                )
            self._rankings[index] = ranking
        return ranking

    def _vector_at(self, index: int) -> np.ndarray:
        """The dense position vector of ranking ``index`` (lazily built)."""
        vector = self._vectors[index]
        if vector is None:
            vector = self._vectors[index] = self._ranking_at(
                index
            ).dense_positions()
        return vector

    def _plane_at(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """The comparison plane of ranking ``index`` (lazily rebuilt).

        Adopted datasets (:meth:`adopt`) start with no planes; a plane is
        a pure function of the ranking's cached position vector, so
        recomputing it here folds out exactly what insertion would have
        folded in.
        """
        plane = self._planes[index]
        if plane is None:
            plane = self._plane(self._vector_at(index))
            self._planes[index] = plane
        return plane

    @staticmethod
    def _plane(vector: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One ranking's comparison plane: (strictly-before, tied) masks.

        Exactly the per-ranking term of
        :func:`repro.core.arrays.pairwise_order_counts`'s sum (0/1 values,
        diagonal cleared), so folding planes in and out of the running
        totals matches a from-scratch count bit for bit.
        """
        left = vector[:, None]
        right = vector[None, :]
        before = left < right
        tied = left == right
        np.fill_diagonal(tied, False)
        return before, tied

    def _apply_delta(self, plane: tuple[np.ndarray, np.ndarray], sign: int) -> None:
        """Fold one precomputed comparison plane into the running matrices."""
        before, tied = plane
        if sign > 0:
            self._before += before
            self._tied += tied
        else:
            self._before -= before
            self._tied -= tied

    def _bump(self, start: float) -> None:
        self._last_delta_seconds = time.perf_counter() - start
        self._generation += 1
        self._fingerprint = None
        self._snapshot = None

    @staticmethod
    def _format(ranking: Ranking) -> str:
        # Imported lazily: repro.datasets imports repro.core at module load.
        from ..datasets.io import format_ranking

        return format_ranking(ranking)

    def __repr__(self) -> str:
        return (
            f"LiveDataset(name={self.name!r}, m={self.num_rankings}, "
            f"n={self.num_elements}, generation={self._generation})"
        )
