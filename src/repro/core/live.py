"""LiveDataset: streaming writes with delta-maintained pairwise weights.

Everything else in the library treats a dataset as immutable: any change
rebuilds the :class:`~repro.core.prepared.PreparedDataset` plan and re-runs
aggregation from scratch, paying the O(m·n²) pairwise construction per
write.  A :class:`LiveDataset` is the mutable counterpart built for write
traffic:

* ``add_ranking`` / ``remove_ranking`` / ``update_ranking`` maintain the
  before/tied count matrices by **delta updates** — one O(n²) comparison
  plane per touched ranking, independent of the dataset size ``m`` —
  instead of recounting all ``m`` rankings;
* the content fingerprint is kept coherent across every mutation (the
  canonical per-ranking text lines are cached, so re-digesting is O(total
  text), never O(m·n²));
* :meth:`snapshot` packages the maintained state as an ordinary immutable
  :class:`~repro.datasets.Dataset` whose memoized preparation plan is
  *adopted*, not rebuilt — the whole existing engine / portfolio / service
  stack consumes live state unchanged, and the handed-out arrays are
  frozen copies so later mutations can never corrupt an earlier snapshot.

The maintained state is **byte-identical** to a from-scratch rebuild after
any mutation sequence: the delta planes are exactly the per-ranking terms
of :func:`repro.core.arrays.pairwise_order_counts`'s sum, added and
subtracted in int64 (associative, no rounding), and the property suite in
``tests/core/test_live.py`` asserts equality of weights, fingerprints and
consensus trajectories against fresh preparation.

The domain is fixed at construction: every ranking, initial or added
later, must cover the same elements (the completeness requirement all
aggregation algorithms share).  Incomplete streams should be normalized
first (:mod:`repro.datasets.normalization`).
"""

from __future__ import annotations

import hashlib
import time
from collections.abc import Iterable, Iterator, Mapping
from typing import Any

import numpy as np

from .arrays import position_tensor
from .exceptions import DomainMismatchError, EmptyDatasetError
from .pairwise import PairwiseWeights
from .prepared import PreparedDataset, store_plan
from .ranking import Element, Ranking

__all__ = ["LiveDataset"]


class LiveDataset:
    """A mutable dataset maintaining its pairwise weights under writes.

    Parameters
    ----------
    rankings:
        The initial rankings (at least one; they establish the fixed
        element domain every later write must cover).
    name:
        Human-readable identifier, carried onto every snapshot.
    metadata:
        Free-form mapping copied onto every snapshot (the snapshot adds a
        ``generation`` entry of its own).
    """

    def __init__(
        self,
        rankings: Iterable[Ranking],
        name: str = "live",
        metadata: Mapping[str, Any] | None = None,
    ):
        initial = list(rankings)
        if not initial:
            raise EmptyDatasetError(
                "a LiveDataset needs at least one initial ranking to fix its domain"
            )
        self.name = name
        self.metadata: dict[str, Any] = dict(metadata or {})
        elements, _ = position_tensor(initial)  # validates the shared domain
        self._elements: list[Element] = elements
        self._domain: frozenset[Element] = frozenset(elements)
        self._rankings: list[Ranking] = initial
        # Per-ranking dense bucket-id vectors (read-only, cached on the
        # immutable rankings) — the rows snapshots stack into the tensor.
        self._vectors: list[np.ndarray] = [
            ranking.dense_positions() for ranking in initial
        ]
        n = len(elements)
        # Writable master matrices; snapshots receive frozen copies.
        self._before = np.zeros((n, n), dtype=np.int64)
        self._tied = np.zeros((n, n), dtype=np.int64)
        # Per-ranking comparison planes (bool, diagonal cleared), built once
        # per insertion so every later delta is pure in-place arithmetic.
        self._planes: list[tuple[np.ndarray, np.ndarray]] = [
            self._plane(vector) for vector in self._vectors
        ]
        for plane in self._planes:
            self._apply_delta(plane, +1)
        # Canonical text lines back the fingerprint; formatting is deferred
        # out of the mutation hot path (None = not formatted yet).
        self._lines: list[str | None] = [None] * len(initial)
        self._generation = 0
        self._fingerprint: str | None = None
        self._snapshot: Any = None  # Dataset of the current generation, lazily built
        self._last_delta_seconds = 0.0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def generation(self) -> int:
        """Mutation counter: increments on every successful write."""
        return self._generation

    @property
    def num_rankings(self) -> int:
        """Number of rankings currently in the dataset ``m``."""
        return len(self._rankings)

    @property
    def num_elements(self) -> int:
        """Number of elements ``n`` in the fixed domain."""
        return len(self._elements)

    @property
    def elements(self) -> list[Element]:
        """The fixed domain in canonical sorted order (copy)."""
        return list(self._elements)

    @property
    def rankings(self) -> tuple[Ranking, ...]:
        """The current rankings, in dataset order (immutable view)."""
        return tuple(self._rankings)

    @property
    def last_delta_seconds(self) -> float:
        """Wall-clock cost of the most recent delta update."""
        return self._last_delta_seconds

    def __len__(self) -> int:
        return len(self._rankings)

    def __iter__(self) -> Iterator[Ranking]:
        return iter(tuple(self._rankings))

    def __getitem__(self, index: int) -> Ranking:
        return self._rankings[index]

    def content_fingerprint(self) -> str:
        """Digest of the current content (same canonical-text digest the
        engine's result cache and the plan cache key on), memoized per
        generation."""
        if self._fingerprint is None:
            lines = self._lines
            for index, line in enumerate(lines):
                if line is None:
                    lines[index] = self._format(self._rankings[index])
            text = "\n".join(lines)
            self._fingerprint = hashlib.sha256(text.encode("utf-8")).hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------ #
    # Mutations (each O(n²) in the touched ranking, independent of m)
    # ------------------------------------------------------------------ #
    def add_ranking(self, ranking: Ranking, index: int | None = None) -> int:
        """Insert one ranking, delta-updating the maintained weights.

        Parameters
        ----------
        ranking:
            The ranking to add; must cover exactly the dataset's domain.
        index:
            Insertion position (defaults to appending at the end).

        Returns
        -------
        int
            The position the ranking now occupies.
        """
        vector = self._validated_vector(ranking)
        start = time.perf_counter()
        if index is None:
            index = len(self._rankings)
        plane = self._plane(vector)
        self._apply_delta(plane, +1)
        self._rankings.insert(index, ranking)
        self._vectors.insert(index, vector)
        self._planes.insert(index, plane)
        self._lines.insert(index, None)
        self._bump(start)
        return index

    def remove_ranking(self, index: int) -> Ranking:
        """Remove the ranking at ``index``, delta-updating the weights.

        The last ranking cannot be removed (pairwise weights of an empty
        dataset are undefined); :class:`EmptyDatasetError` is raised
        instead.

        Parameters
        ----------
        index:
            Position of the ranking to remove.
        """
        if len(self._rankings) == 1:
            raise EmptyDatasetError(
                f"cannot remove the last ranking of LiveDataset {self.name!r}"
            )
        removed = self._rankings[index]  # IndexError before any state change
        start = time.perf_counter()
        self._apply_delta(self._planes[index], -1)
        del self._rankings[index]
        del self._vectors[index]
        del self._planes[index]
        del self._lines[index]
        self._bump(start)
        return removed

    def update_ranking(self, index: int, ranking: Ranking) -> Ranking:
        """Replace the ranking at ``index``; returns the previous one.

        A single remove+add delta: two O(n²) plane updates, never a
        rebuild.

        Parameters
        ----------
        index:
            Position of the ranking to replace.
        ranking:
            The replacement; must cover exactly the dataset's domain.
        """
        vector = self._validated_vector(ranking)
        previous = self._rankings[index]  # IndexError before any state change
        start = time.perf_counter()
        plane = self._plane(vector)
        self._apply_delta(self._planes[index], -1)
        self._apply_delta(plane, +1)
        self._rankings[index] = ranking
        self._vectors[index] = vector
        self._planes[index] = plane
        self._lines[index] = None
        self._bump(start)
        return previous

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Any:
        """The current content as an ordinary immutable ``Dataset``.

        The snapshot's preparation plan adopts the delta-maintained
        weights (frozen copies — later mutations cannot touch them), its
        fingerprint is the live fingerprint, and its metadata records the
        live ``generation``, so downstream consumers (engine, portfolio,
        service frontend) use it exactly like any other dataset.  Memoized
        per generation: repeated calls between writes return the same
        object.
        """
        if self._snapshot is not None:
            return self._snapshot
        # Imported lazily: repro.datasets imports repro.core at module load.
        from ..datasets.dataset import Dataset

        start = time.perf_counter()
        rankings = tuple(self._rankings)
        positions = np.vstack(self._vectors)
        before = self._before.copy()
        tied = self._tied.copy()
        weights = PairwiseWeights.from_state(
            self._elements, positions, before, tied, len(rankings)
        )
        fingerprint = self.content_fingerprint()
        plan = PreparedDataset.from_weights(
            rankings,
            weights,
            fingerprint=fingerprint,
            prepare_seconds=self._last_delta_seconds + time.perf_counter() - start,
        )
        metadata = dict(self.metadata)
        metadata["generation"] = self._generation
        dataset = Dataset(rankings, name=self.name, metadata=metadata)
        object.__setattr__(dataset, "_content_fingerprint", fingerprint)
        object.__setattr__(dataset, "_plan", plan)
        # Publish the adopted plan under its fingerprint so sibling dataset
        # instances (unpickled copies, re-parsed files) reuse it; the LRU
        # bound of the plan cache is what keeps write churn from leaking.
        store_plan(fingerprint, plan)
        self._snapshot = dataset
        return dataset

    def prepared(self) -> PreparedDataset:
        """The current generation's preparation plan (adopted, not rebuilt)."""
        return self.snapshot().prepared()

    def weights(self) -> PairwiseWeights:
        """The current generation's pairwise weights (frozen snapshot view)."""
        return self.prepared().weights

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _validated_vector(self, ranking: Ranking) -> np.ndarray:
        if ranking.domain != self._domain:
            raise DomainMismatchError(
                f"ranking is over a different domain than LiveDataset {self.name!r}; "
                "all writes must cover the dataset's fixed element set "
                "(normalize first: projection or unification)"
            )
        return ranking.dense_positions()

    @staticmethod
    def _plane(vector: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One ranking's comparison plane: (strictly-before, tied) masks.

        Exactly the per-ranking term of
        :func:`repro.core.arrays.pairwise_order_counts`'s sum (0/1 values,
        diagonal cleared), so folding planes in and out of the running
        totals matches a from-scratch count bit for bit.
        """
        left = vector[:, None]
        right = vector[None, :]
        before = left < right
        tied = left == right
        np.fill_diagonal(tied, False)
        return before, tied

    def _apply_delta(self, plane: tuple[np.ndarray, np.ndarray], sign: int) -> None:
        """Fold one precomputed comparison plane into the running matrices."""
        before, tied = plane
        if sign > 0:
            self._before += before
            self._tied += tied
        else:
            self._before -= before
            self._tied -= tied

    def _bump(self, start: float) -> None:
        self._last_delta_seconds = time.perf_counter() - start
        self._generation += 1
        self._fingerprint = None
        self._snapshot = None

    @staticmethod
    def _format(ranking: Ranking) -> str:
        # Imported lazily: repro.datasets imports repro.core at module load.
        from ..datasets.io import format_ranking

        return format_ranking(ranking)

    def __repr__(self) -> str:
        return (
            f"LiveDataset(name={self.name!r}, m={self.num_rankings}, "
            f"n={self.num_elements}, generation={self._generation})"
        )
