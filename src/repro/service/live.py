"""Live serving sessions: mutate, repair, re-serve.

The write-path counterpart of :class:`~repro.service.frontend.ServiceFrontend`.
A :class:`LiveAggregationSession` owns a :class:`~repro.core.live.LiveDataset`
and keeps a consensus continuously fresh across streaming writes:

* every mutation (``add_ranking`` / ``remove_ranking`` / ``update_ranking``)
  delta-updates the dataset's pairwise weights (O(n²) per touched ranking,
  never a rebuild) and **invalidates** the responses the attached frontend
  cached under the pre-mutation fingerprint;
* :meth:`LiveAggregationSession.repair` re-solves **warm-started** from the
  pre-mutation consensus (``run_anytime(..., initial=...)``): the anytime
  local-search family refines the previous answer against the new weights
  first, which reconverges in a fraction of a cold solve when the write
  touched only a few rankings;
* the repaired consensus is **re-published** under the post-mutation
  fingerprint, so the next frontend request for the new content is a cache
  hit instead of a recomputation.

Each repair returns a :class:`RepairReport` quoting the convergence delta:
what the previous consensus scored against the mutated weights, what the
repaired one scores, and how long the warm search took.

Sessions can be **journaled** (``journal_dir=``): every acknowledged
mutation and published repair is appended to a
:class:`~repro.core.journal.LiveJournal` *before* the call returns, and
:meth:`LiveAggregationSession.recover` rebuilds the session after a crash —
replaying the journal into a byte-identical dataset and warm-starting the
next repair from the last published consensus.  The write-ahead ordering is
strict: a mutation whose journal append fails is **rolled back** before the
error propagates, so the set of acknowledged mutations is always a subset
of the journaled ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..algorithms.anytime import run_anytime, supports_anytime
from ..algorithms.registry import make_algorithm
from ..core.journal import (
    JOURNAL_RECOVERED,
    JournalError,
    LiveJournal,
    init_record,
    mutation_record,
    repair_record,
    replay_journal,
)
from ..core.kemeny import generalized_kemeny_score_from_weights
from ..core.live import LiveDataset
from ..core.ranking import Ranking
from ..telemetry import runtime as _telemetry
from .frontend import ServiceFrontend, ServiceRequest

__all__ = ["RepairReport", "LiveAggregationSession"]


@dataclass(frozen=True)
class RepairReport:
    """Outcome of one consensus repair after a mutation.

    Attributes
    ----------
    generation:
        The live dataset generation the repair brought the consensus up to.
    fingerprint:
        Content fingerprint of the repaired generation.
    algorithm:
        Name of the algorithm that ran the repair.
    consensus:
        The repaired consensus ranking.
    score:
        Its generalized Kemeny score against the post-mutation weights.
    previous_score:
        What the *pre-mutation* consensus scores against the post-mutation
        weights (``None`` on the initial cold solve) — the starting point
        of the warm search.
    score_delta:
        ``previous_score - score``: how much the repair improved on simply
        keeping the stale consensus (``None`` on the initial cold solve;
        never negative — warm starts only keep improvements).
    warm_start:
        Whether the search was warm-started from a previous consensus.
    repair_seconds:
        Wall-clock time of the repair solve.
    steps:
        Anytime steps the repair search took.
    invalidated:
        Cached frontend responses purged by the mutations this repair
        covers (0 without an attached frontend).
    """

    generation: int
    fingerprint: str
    algorithm: str
    consensus: Ranking
    score: int
    previous_score: int | None
    score_delta: int | None
    warm_start: bool
    repair_seconds: float
    steps: int
    invalidated: int

    def describe(self) -> dict[str, Any]:
        """Flat dictionary form (CLI tables, benchmark payloads)."""
        return {
            "generation": self.generation,
            "fingerprint": self.fingerprint[:12],
            "algorithm": self.algorithm,
            "score": self.score,
            "previous_score": self.previous_score,
            "score_delta": self.score_delta,
            "warm_start": self.warm_start,
            "repair_seconds": self.repair_seconds,
            "steps": self.steps,
            "invalidated": self.invalidated,
        }


class LiveAggregationSession:
    """Keep a consensus fresh over a mutating dataset.

    Parameters
    ----------
    dataset:
        The live dataset to serve, or anything accepted by
        :class:`~repro.core.live.LiveDataset` (an iterable of rankings is
        wrapped into a fresh one).
    algorithm:
        Registry name of the anytime-capable algorithm running the solves
        (default ``"BioConsert"``); must support warm starts
        (:func:`~repro.algorithms.anytime.supports_anytime`).
    frontend:
        Optional :class:`~repro.service.frontend.ServiceFrontend` whose
        cache the session keeps coherent: mutations invalidate the stale
        fingerprint, repairs re-publish under the new one.
    budget_seconds:
        Wall-clock budget per solve (``None`` runs each search to
        completion).
    seed:
        Seed forwarded to the algorithm factory.
    journal_dir:
        Directory for the session's write-ahead journal.  A fresh journal
        records the initial dataset; a directory that already holds
        journal content is refused — resume from it with
        :meth:`recover` instead of silently forking history.
    journal:
        An already-open :class:`~repro.core.journal.LiveJournal` writer to
        adopt instead of opening one (mutually exclusive with
        ``journal_dir``; used by :meth:`recover`).
    journal_fsync:
        Fsync policy for a journal opened via ``journal_dir``.
    compact_every:
        Write a compaction snapshot whenever this many records accumulated
        since the last one (checked after each repair; ``None`` disables
        automatic compaction — :meth:`compact` stays available).
    """

    def __init__(
        self,
        dataset: LiveDataset,
        *,
        algorithm: str = "BioConsert",
        frontend: ServiceFrontend | None = None,
        budget_seconds: float | None = None,
        seed: int | None = None,
        journal_dir: str | Path | None = None,
        journal: LiveJournal | None = None,
        journal_fsync: str = "batch",
        compact_every: int | None = None,
    ):
        if not isinstance(dataset, LiveDataset):
            dataset = LiveDataset(dataset)
        self.dataset = dataset
        self.algorithm_name = algorithm
        self.frontend = frontend
        self.budget_seconds = budget_seconds
        self.seed = seed
        self._algorithm = make_algorithm(algorithm, seed=seed)
        if not supports_anytime(self._algorithm):
            raise TypeError(
                f"algorithm {algorithm!r} does not support anytime execution; "
                "live repair needs begin_anytime(dataset, initial=...)"
            )
        if journal is not None and journal_dir is not None:
            raise JournalError("pass journal_dir or an open journal, not both")
        if compact_every is not None and compact_every < 1:
            raise JournalError(f"compact_every must be >= 1, got {compact_every}")
        if journal is None and journal_dir is not None:
            journal = LiveJournal(journal_dir, fsync=journal_fsync)
            if journal.had_records:
                journal.close()
                raise JournalError(
                    f"journal directory {journal_dir} already holds a journal; "
                    "use LiveAggregationSession.recover() to resume it"
                )
            journal.append(
                init_record(dataset.name, dataset.rankings, dataset.metadata)
            )
        self.journal = journal
        self.compact_every = compact_every
        self._consensus: Ranking | None = None
        self._score: int | None = None
        self._served_generation: int | None = None
        self._pending_invalidated = 0

    # ------------------------------------------------------------------ #
    # Crash recovery
    # ------------------------------------------------------------------ #
    @classmethod
    def recover(
        cls,
        journal_dir: str | Path,
        *,
        algorithm: str | None = None,
        frontend: ServiceFrontend | None = None,
        budget_seconds: float | None = None,
        seed: int | None = None,
        journal_fsync: str = "batch",
        compact_every: int | None = None,
    ) -> "LiveAggregationSession":
        """Resume a journaled session after a crash.

        Replays the journal (truncating any torn tail the dying process
        left behind) into a dataset byte-identical to the acknowledged
        mutation history, restores the last published consensus so the
        next :meth:`repair` warm-starts from it instead of solving cold,
        and reopens the journal for further appends.

        Parameters
        ----------
        journal_dir:
            The crashed session's journal directory.
        algorithm:
            Algorithm override; defaults to the journaled one (falling
            back to ``"BioConsert"`` when no repair was ever journaled).
        frontend, budget_seconds, seed, journal_fsync, compact_every:
            As in the constructor (serving configuration is not journaled
            — it belongs to the process, not the state).
        """
        result = replay_journal(journal_dir)
        journal = LiveJournal(journal_dir, fsync=journal_fsync)
        session = cls(
            result.dataset,
            algorithm=algorithm or result.algorithm or "BioConsert",
            frontend=frontend,
            budget_seconds=budget_seconds,
            seed=seed,
            journal=journal,
            compact_every=compact_every,
        )
        if result.consensus is not None:
            session._consensus = result.consensus
            session._score = result.score
            session._served_generation = result.repair_generation
        if _telemetry.is_enabled():
            _telemetry.count(JOURNAL_RECOVERED, dataset=result.dataset.name)
        return session

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def consensus(self) -> Ranking | None:
        """Latest consensus (``None`` before the first solve)."""
        return self._consensus

    @property
    def score(self) -> int | None:
        """Latest consensus score (``None`` before the first solve)."""
        return self._score

    @property
    def is_stale(self) -> bool:
        """Whether mutations happened since the consensus was last repaired."""
        return self._served_generation != self.dataset.generation

    # ------------------------------------------------------------------ #
    # Mutations (delegate to the live dataset, then invalidate)
    # ------------------------------------------------------------------ #
    def add_ranking(self, ranking: Ranking, index: int | None = None) -> int:
        """Insert one ranking; stale cached responses are invalidated.

        With a journal attached, the mutation is durably appended before
        this returns; a failed append rolls the insertion back.

        Parameters
        ----------
        ranking:
            The ranking to add (must cover the dataset's fixed domain).
        index:
            Insertion position (defaults to appending).
        """
        old = self.dataset.content_fingerprint()
        position = self.dataset.add_ranking(ranking, index)
        if self.journal is not None:
            try:
                self.journal.append(
                    mutation_record(
                        "add",
                        self.dataset.generation,
                        index=position,
                        ranking=self.dataset.line_at(position),
                    )
                )
            except Exception:
                self.dataset.remove_ranking(position)
                raise
        self._invalidate(old)
        return position

    def remove_ranking(self, index: int) -> Ranking:
        """Remove one ranking; stale cached responses are invalidated.

        With a journal attached, the mutation is durably appended before
        this returns; a failed append re-inserts the ranking.

        Parameters
        ----------
        index:
            Position of the ranking to remove.
        """
        old = self.dataset.content_fingerprint()
        removed = self.dataset.remove_ranking(index)
        if self.journal is not None:
            try:
                self.journal.append(
                    mutation_record("remove", self.dataset.generation, index=index)
                )
            except Exception:
                self.dataset.add_ranking(removed, index)
                raise
        self._invalidate(old)
        return removed

    def update_ranking(self, index: int, ranking: Ranking) -> Ranking:
        """Replace one ranking; stale cached responses are invalidated.

        With a journal attached, the mutation is durably appended before
        this returns; a failed append restores the previous ranking.

        Parameters
        ----------
        index:
            Position of the ranking to replace.
        ranking:
            The replacement (must cover the dataset's fixed domain).
        """
        old = self.dataset.content_fingerprint()
        previous = self.dataset.update_ranking(index, ranking)
        if self.journal is not None:
            try:
                self.journal.append(
                    mutation_record(
                        "update",
                        self.dataset.generation,
                        index=index,
                        ranking=self.dataset.line_at(index),
                    )
                )
            except Exception:
                self.dataset.update_ranking(index, previous)
                raise
        self._invalidate(old)
        return previous

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def serve(self) -> RepairReport:
        """Current consensus, repairing first when the dataset mutated.

        The cheap read path: returns immediately when the consensus is
        already at the live generation, otherwise runs one
        :meth:`repair`.
        """
        report = self._current_report()
        if report is not None:
            return report
        return self.repair()

    def repair(self, budget_seconds: float | None = None) -> RepairReport:
        """Bring the consensus up to the current generation.

        Warm-starts the anytime search from the pre-mutation consensus
        when one exists (the initial solve is cold), re-publishes the
        result under the new fingerprint on the attached frontend and
        reports the convergence delta.

        Parameters
        ----------
        budget_seconds:
            Budget override for this repair; defaults to the session
            budget.
        """
        snapshot = self.dataset.snapshot()
        fingerprint = snapshot.content_fingerprint()
        budget = self.budget_seconds if budget_seconds is None else budget_seconds
        previous = self._consensus
        previous_score: int | None = None
        if previous is not None:
            previous_score = int(
                generalized_kemeny_score_from_weights(
                    previous, snapshot.prepared().weights
                )
            )
        with _telemetry.span(
            "live.repair",
            dataset=self.dataset.name,
            generation=self.dataset.generation,
            warm=previous is not None,
        ):
            start = time.perf_counter()
            result = run_anytime(
                self._algorithm, snapshot, budget, initial=previous
            )
            repair_seconds = time.perf_counter() - start
        self._consensus = result.consensus
        self._score = int(result.score)
        self._served_generation = self.dataset.generation
        invalidated = self._pending_invalidated
        self._pending_invalidated = 0
        self._publish(snapshot, result.consensus, int(result.score))
        if self.journal is not None:
            # Journaled *after* the in-memory publish: losing the repair
            # record is safe (recovery warm-starts from an older consensus
            # and repairs again), losing a mutation record is not.
            self.journal.append(
                repair_record(
                    self.dataset.generation,
                    result.consensus,
                    int(result.score),
                    self.algorithm_name,
                )
            )
            if (
                self.compact_every is not None
                and self.journal.appended_since_snapshot >= self.compact_every
            ):
                self.compact()
        if _telemetry.is_enabled():
            _telemetry.count("live.repairs", warm=previous is not None)
            _telemetry.observe("live.repair_seconds", repair_seconds)
        return RepairReport(
            generation=self.dataset.generation,
            fingerprint=fingerprint,
            algorithm=self.algorithm_name,
            consensus=result.consensus,
            score=int(result.score),
            previous_score=previous_score,
            score_delta=(
                None if previous_score is None else previous_score - int(result.score)
            ),
            warm_start=previous is not None,
            repair_seconds=repair_seconds,
            steps=int(result.details.get("steps", 0)),
            invalidated=invalidated,
        )

    # ------------------------------------------------------------------ #
    # Journal maintenance
    # ------------------------------------------------------------------ #
    def compact(self) -> None:
        """Write a compaction snapshot and drop the journal history it covers.

        The snapshot embeds the dataset's delta-maintained weight matrices
        and the current consensus, so recovery adopts them instead of
        replaying the compacted mutations.  A no-op without a journal.
        """
        if self.journal is None:
            return
        self.journal.snapshot(
            self.dataset,
            consensus=self._consensus,
            score=self._score,
            algorithm=self.algorithm_name if self._consensus is not None else None,
            repair_generation=self._served_generation,
        )

    def close(self) -> None:
        """Flush and close the attached journal (idempotent, no-op without one)."""
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "LiveAggregationSession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _current_report(self) -> RepairReport | None:
        """A zero-cost report when the consensus is already fresh."""
        if (
            self._consensus is None
            or self._score is None
            or self._served_generation != self.dataset.generation
        ):
            return None
        return RepairReport(
            generation=self.dataset.generation,
            fingerprint=self.dataset.content_fingerprint(),
            algorithm=self.algorithm_name,
            consensus=self._consensus,
            score=self._score,
            previous_score=self._score,
            score_delta=0,
            warm_start=False,
            repair_seconds=0.0,
            steps=0,
            invalidated=0,
        )

    def _invalidate(self, stale_fingerprint: str) -> None:
        """Purge the attached frontend's responses for a stale fingerprint."""
        if self.frontend is None:
            return
        self._pending_invalidated += self.frontend.invalidate_dataset(
            stale_fingerprint
        )

    def _publish(self, snapshot: Any, consensus: Ranking, score: int) -> None:
        """Store the repaired consensus in the frontend cache (re-serve path).

        The next request for the post-mutation content hits the cache
        instead of recomputing; stored under the exact service key the
        frontend would compute for a pinned-algorithm request with the
        session's budget.
        """
        if self.frontend is None:
            return
        request = ServiceRequest(
            dataset=snapshot,
            algorithm=self.algorithm_name,
            budget_seconds=self.budget_seconds,
        )
        _, key, fingerprint = self.frontend._prepare(request)
        self.frontend._cache_store(
            key, consensus, score, self.algorithm_name, fingerprint
        )

    def __repr__(self) -> str:
        return (
            f"LiveAggregationSession(dataset={self.dataset!r}, "
            f"algorithm={self.algorithm_name!r}, stale={self.is_stale})"
        )
