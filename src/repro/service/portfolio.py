"""PortfolioScheduler: race guidance-chosen algorithms under one time budget.

The guidance engine (Section 7.4, :mod:`repro.evaluation.guidance`) tells
*which* algorithms suit a dataset; the portfolio scheduler turns that
advice into a deadline-honouring execution plan:

1. candidate algorithms come from :func:`repro.evaluation.recommend` for
   the dataset's profile and the caller's priority (an explicit list can
   be given instead), always backed by a positional *floor* algorithm so a
   first consensus exists within microseconds;
2. cheap **one-shot** candidates (positional methods, KwikSort) run first,
   each under the remaining budget; candidates with a known-exponential
   cost model (the exact solvers) are *skipped* when the remaining budget
   cannot plausibly cover them — this is what lets
   ``repro-rankagg portfolio FILE --budget 0.5`` answer on datasets where
   the exact solver alone would blow the deadline;
3. **anytime** candidates (the local-search family, see
   :mod:`repro.algorithms.anytime`) are then raced round-robin, one
   increment each, until the deadline; unfinished searches are cancelled
   and their best-so-far kept.

The whole race runs off **one** dataset preparation plan
(:mod:`repro.core.prepared`): the O(m·n²) pairwise construction is built
a single time and threaded into every one-shot run and every anytime
racer, so member N never re-bills the setup of member 1 to the budget.

The scheduler is cooperative and single-threaded, so results are
deterministic for a fixed seed: with a generous budget every member runs
to completion and the portfolio returns exactly the best single
algorithm's consensus.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

from ..algorithms.anytime import AnytimeController, supports_anytime
from ..algorithms.base import RankAggregator
from ..algorithms.registry import make_algorithm
from ..core.exceptions import ReproError
from ..core.prepared import PreparedDataset
from ..core.ranking import Ranking
from ..datasets.dataset import Dataset
from ..evaluation.guidance import Priority, profile_dataset, recommend
from ..evaluation.timing import run_with_budget
from ..telemetry import runtime as _telemetry
from ..testing import faults as _faults
from ..testing.faults import TransientRunError, WorkerCrashError

__all__ = ["MemberReport", "PortfolioResult", "PortfolioScheduler"]

# Algorithms whose cost grows exponentially with the number of elements;
# they are skipped (not attempted) when the remaining budget cannot
# plausibly cover them, because a started run cannot be interrupted.
_EXPONENTIAL_SOLVERS = frozenset({"ExactAlgorithm", "ExactSubsetDP", "BnB", "BnB-beam"})

# Floor algorithm: answers in microseconds on any dataset, guaranteeing the
# portfolio always holds a valid consensus before the anytime racing phase.
_FLOOR_ALGORITHM = "BordaCount"


@dataclass(frozen=True)
class MemberReport:
    """Execution record of one portfolio member.

    Attributes
    ----------
    algorithm:
        Registry name of the member.
    mode:
        ``"one-shot"`` (ran once under the remaining budget) or
        ``"anytime"`` (raced incrementally against the deadline).
    status:
        ``"finished"`` (ran to completion), ``"cancelled"`` (deadline hit,
        best-so-far kept), ``"skipped"`` (never started: estimated cost
        exceeded the remaining budget), ``"over-budget"`` (a one-shot run
        overran the deadline; its result was discarded) or ``"failed"``
        (library error, e.g. algorithm not applicable).
    score:
        Best generalized Kemeny score the member achieved (``None`` when
        skipped, discarded or failed).
    steps:
        Anytime increments taken (0 for one-shot members).
    elapsed_seconds:
        Wall-clock time spent inside this member.
    reason:
        Human-readable detail for skipped / failed members.
    """

    algorithm: str
    mode: str
    status: str
    score: int | None
    steps: int = 0
    elapsed_seconds: float = 0.0
    reason: str | None = None

    def describe(self) -> dict[str, Any]:
        """Flat dictionary form (CLI tables, service reports)."""
        return {
            "algorithm": self.algorithm,
            "mode": self.mode,
            "status": self.status,
            "score": self.score,
            "steps": self.steps,
            "elapsed_seconds": self.elapsed_seconds,
            "reason": self.reason,
        }


@dataclass
class PortfolioResult:
    """Outcome of one portfolio run: the winning consensus plus accounting.

    Attributes
    ----------
    consensus:
        The best consensus found across every member.
    score:
        Its generalized Kemeny score.
    algorithm:
        Name of the member that produced it.
    budget_seconds:
        The shared budget the portfolio ran under.
    elapsed_seconds:
        Wall-clock time of the whole race.
    members:
        One :class:`MemberReport` per candidate.
    """

    consensus: Ranking
    score: int
    algorithm: str
    budget_seconds: float | None
    elapsed_seconds: float
    members: list[MemberReport] = field(default_factory=list)

    @property
    def within_budget(self) -> bool:
        """Whether the whole portfolio honoured its budget (10% tolerance)."""
        if self.budget_seconds is None:
            return True
        return self.elapsed_seconds <= 1.1 * self.budget_seconds

    def describe(self) -> dict[str, Any]:
        """Flat dictionary form (CLI output, service cache records)."""
        return {
            "algorithm": self.algorithm,
            "score": self.score,
            "budget_seconds": self.budget_seconds,
            "elapsed_seconds": self.elapsed_seconds,
            "within_budget": self.within_budget,
            "members": [member.describe() for member in self.members],
        }

    def __repr__(self) -> str:
        return (
            f"PortfolioResult(algorithm={self.algorithm!r}, score={self.score}, "
            f"elapsed={self.elapsed_seconds:.4f}s, members={len(self.members)})"
        )


class PortfolioScheduler:
    """Race a portfolio of candidate algorithms under a shared time budget.

    Parameters
    ----------
    budget_seconds:
        Shared wall-clock budget for the whole portfolio; ``None`` runs
        every member to completion.
    priority:
        Guidance priority steering candidate selection
        (``quality`` / ``balanced`` / ``speed`` / ``optimality``).
    algorithms:
        Explicit candidate names (registry names); bypasses the guidance
        engine when given.
    seed:
        Seed forwarded to randomized candidates.
    include_floor:
        Always append the positional floor algorithm (BordaCount) so a
        consensus exists within microseconds.
    member_attempts:
        Attempts per one-shot member before it is reported ``failed``:
        transient infrastructure failures
        (:class:`~repro.testing.faults.TransientRunError`, simulated
        worker crashes) are retried against the remaining budget.  When
        retries burn the budget the race falls back to the unbudgeted
        floor run, so a consensus is still produced.
    """

    def __init__(
        self,
        *,
        budget_seconds: float | None = 1.0,
        priority: Priority | str = Priority.BALANCED,
        algorithms: Sequence[str] | None = None,
        seed: int | None = None,
        include_floor: bool = True,
        member_attempts: int = 2,
    ):
        if budget_seconds is not None and budget_seconds < 0:
            raise ValueError(f"budget_seconds must be >= 0, got {budget_seconds}")
        if member_attempts < 1:
            raise ValueError(f"member_attempts must be >= 1, got {member_attempts}")
        self.budget_seconds = budget_seconds
        self.priority = Priority(priority)
        self.algorithms = tuple(algorithms) if algorithms is not None else None
        self.seed = seed
        self.include_floor = include_floor
        self.member_attempts = member_attempts

    # ------------------------------------------------------------------ #
    # Candidate selection
    # ------------------------------------------------------------------ #
    def candidates(self, dataset: Dataset) -> list[str]:
        """Candidate algorithm names for ``dataset``, in racing order.

        Parameters
        ----------
        dataset:
            The (complete) dataset about to be aggregated; profiled with
            :func:`repro.evaluation.profile_dataset` when the candidate
            list comes from the guidance engine.
        """
        if self.algorithms is not None:
            names = list(dict.fromkeys(self.algorithms))
        else:
            profile = profile_dataset(dataset)
            names = list(
                dict.fromkeys(
                    entry.algorithm for entry in recommend(profile, self.priority)
                )
            )
        if self.include_floor and _FLOOR_ALGORITHM not in names:
            names.append(_FLOOR_ALGORITHM)
        return names

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, dataset: Dataset) -> PortfolioResult:
        """Race the candidate portfolio on ``dataset`` and return the winner.

        The returned consensus is the best (lowest generalized Kemeny
        score) across every member, whatever its completion status — a
        deadline always yields a valid consensus as long as at least one
        member produced a candidate, which the floor algorithm guarantees.

        Parameters
        ----------
        dataset:
            The complete dataset to aggregate.
        """
        with _telemetry.span("portfolio.run", dataset=dataset.name) as portfolio_span:
            result = self._run(dataset)
            if _telemetry.is_enabled():
                portfolio_span.set(
                    winner=result.algorithm,
                    score=result.score,
                    members=len(result.members),
                )
        return result

    def _run(self, dataset: Dataset) -> PortfolioResult:
        start = time.perf_counter()
        deadline = None if self.budget_seconds is None else start + self.budget_seconds
        names = self.candidates(dataset)

        # One preparation plan shared by every member — one-shot runs and
        # anytime racers alike; rebuilding the O(m·n²) matrices inside each
        # candidate would repeatedly bill the same setup to the budget.
        try:
            prepared: PreparedDataset | None = dataset.prepared()
        except ReproError:
            prepared = None  # let each member surface the failure itself

        one_shot: list[tuple[str, RankAggregator]] = []
        racers: list[tuple[str, RankAggregator]] = []
        for name in names:
            algorithm = make_algorithm(name, seed=self.seed)
            if supports_anytime(algorithm):
                racers.append((name, algorithm))
            else:
                one_shot.append((name, algorithm))

        members: list[MemberReport] = []
        best: tuple[int, Ranking, str] | None = None  # (score, consensus, name)

        def consider(score: int, consensus: Ranking, name: str) -> None:
            nonlocal best
            if best is None or score < best[0]:
                best = (score, consensus, name)

        # Phase 1 — one-shot members, each under the remaining budget.
        for name, algorithm in one_shot:
            members.append(
                self._run_one_shot(name, algorithm, dataset, deadline, consider, prepared)
            )

        # Phase 2 — race the anytime members round-robin until the deadline.
        members.extend(
            self._race_anytime(racers, dataset, deadline, consider, prepared)
        )

        # Last resort — every member was skipped, discarded or failed (e.g.
        # a zero budget with no anytime racer): run the floor algorithm
        # unbudgeted so a deadline still yields a valid consensus.
        if best is None:
            members.append(self._forced_floor(names, dataset, consider, prepared))

        elapsed = time.perf_counter() - start
        if best is None:
            raise ReproError(
                f"portfolio produced no consensus for dataset {dataset.name!r}: "
                f"every member failed ({[m.describe() for m in members]})"
            )
        score, consensus, winner = best
        return PortfolioResult(
            consensus=consensus,
            score=score,
            algorithm=winner,
            budget_seconds=self.budget_seconds,
            elapsed_seconds=elapsed,
            members=members,
        )

    # ------------------------------------------------------------------ #
    def _forced_floor(
        self,
        names: list[str],
        dataset: Dataset,
        consider,
        prepared: PreparedDataset | None = None,
    ) -> MemberReport:
        """Unbudgeted floor run guaranteeing a consensus exists.

        Uses the floor algorithm (or the first candidate when the floor was
        explicitly disabled); it answers in microseconds, so running it past
        an exhausted deadline is the least-bad way to honour the "a deadline
        always yields a valid consensus" contract.  ``prepared`` is the
        portfolio's shared preparation plan, when one could be built.
        """
        name = _FLOOR_ALGORITHM if _FLOOR_ALGORITHM in names else names[0]
        tick = time.perf_counter()
        result = make_algorithm(name, seed=self.seed).aggregate(dataset, prepared=prepared)
        consider(int(result.score), result.consensus, name)
        return MemberReport(
            algorithm=name,
            mode="one-shot",
            status="finished",
            score=int(result.score),
            elapsed_seconds=time.perf_counter() - tick,
            reason="forced floor run: no other member produced a consensus",
        )

    def _run_one_shot(
        self,
        name: str,
        algorithm: RankAggregator,
        dataset: Dataset,
        deadline: float | None,
        consider,
        prepared: PreparedDataset | None = None,
    ) -> MemberReport:
        """Run one non-anytime member under the remaining budget,
        aggregating through the portfolio's shared plan (``prepared``)."""
        with _telemetry.span(
            "portfolio.member", algorithm=name, mode="one-shot"
        ) as member_span:
            report = self._run_one_shot_inner(
                name, algorithm, dataset, deadline, consider, prepared
            )
            if _telemetry.is_enabled():
                member_span.set(status=report.status)
                _telemetry.observe(
                    "portfolio.member.seconds",
                    report.elapsed_seconds,
                    algorithm=name,
                    mode="one-shot",
                    status=report.status,
                )
        return report

    def _run_one_shot_inner(
        self,
        name: str,
        algorithm: RankAggregator,
        dataset: Dataset,
        deadline: float | None,
        consider,
        prepared: PreparedDataset | None = None,
    ) -> MemberReport:
        attempt = 0
        spent = 0.0
        while True:
            remaining = None if deadline is None else deadline - time.perf_counter()
            if remaining is not None and remaining <= 0:
                if attempt:
                    # Retries burned the budget; the race's forced floor run
                    # (cheapest one-shot member, unbudgeted) still guarantees
                    # a consensus.
                    return MemberReport(
                        algorithm=name,
                        mode="one-shot",
                        status="failed",
                        score=None,
                        elapsed_seconds=spent,
                        reason=f"budget exhausted after {attempt} transient failure(s)",
                    )
                return MemberReport(
                    algorithm=name,
                    mode="one-shot",
                    status="skipped",
                    score=None,
                    reason="budget already exhausted",
                )
            estimate = self._estimated_cost(name, dataset)
            if remaining is not None and estimate > remaining:
                return MemberReport(
                    algorithm=name,
                    mode="one-shot",
                    status="skipped",
                    score=None,
                    reason=(
                        f"estimated cost {estimate:.2f}s exceeds the remaining "
                        f"budget {remaining:.2f}s"
                    ),
                )
            tick = time.perf_counter()
            try:
                # Fault-injection site "portfolio.member" (crash / exception
                # rules); failures here follow the same transient-retry path
                # as real ones.
                _faults.maybe_fire("portfolio.member", name, attempt)
                result, elapsed, within = run_with_budget(
                    lambda: algorithm.aggregate(dataset, prepared=prepared), remaining
                )
            except (TransientRunError, WorkerCrashError) as error:
                spent += time.perf_counter() - tick
                attempt += 1
                if _telemetry.is_enabled():
                    _telemetry.count("portfolio.retry", algorithm=name)
                if attempt >= self.member_attempts:
                    return MemberReport(
                        algorithm=name,
                        mode="one-shot",
                        status="failed",
                        score=None,
                        elapsed_seconds=spent,
                        reason=(
                            f"transient failure persisted after {attempt} "
                            f"attempt(s): {error}"
                        ),
                    )
                continue
            except ReproError as error:
                return MemberReport(
                    algorithm=name,
                    mode="one-shot",
                    status="failed",
                    score=None,
                    reason=str(error),
                )
            spent += elapsed
            if not within or result is None:
                return MemberReport(
                    algorithm=name,
                    mode="one-shot",
                    status="over-budget",
                    score=None,
                    elapsed_seconds=spent,
                    reason="run overran the remaining budget; result discarded",
                )
            consider(int(result.score), result.consensus, name)
            return MemberReport(
                algorithm=name,
                mode="one-shot",
                status="finished",
                score=int(result.score),
                elapsed_seconds=spent,
            )

    def _race_anytime(
        self,
        racers: list[tuple[str, RankAggregator]],
        dataset: Dataset,
        deadline: float | None,
        consider,
        prepared: PreparedDataset | None = None,
    ) -> list[MemberReport]:
        """Round-robin the anytime members until the deadline or exhaustion.

        Every racer starts from the portfolio's shared plan (``prepared``):
        the O(m·n²) pairwise construction happens once for the whole race,
        not once per member, inside the budget.
        """
        with _telemetry.span("portfolio.race", racers=len(racers)):
            return self._race_anytime_inner(
                racers, dataset, deadline, consider, prepared
            )

    def _race_anytime_inner(
        self,
        racers: list[tuple[str, RankAggregator]],
        dataset: Dataset,
        deadline: float | None,
        consider,
        prepared: PreparedDataset | None = None,
    ) -> list[MemberReport]:
        reports: list[MemberReport] = []
        active: list[tuple[str, AnytimeController, float]] = []
        shared_weights = None if prepared is None else prepared.weights
        for name, algorithm in racers:
            try:
                controller = algorithm.begin_anytime(dataset, shared_weights)
            except ReproError as error:
                reports.append(
                    MemberReport(
                        algorithm=name,
                        mode="anytime",
                        status="failed",
                        score=None,
                        reason=str(error),
                    )
                )
                continue
            active.append((name, controller, 0.0))

        # Guarantee every racer one increment (its starting candidate) even
        # when the budget is already spent, then honour the deadline.
        round_index = 0
        while active:
            still_active: list[tuple[str, AnytimeController, float]] = []
            for name, controller, spent in active:
                if (
                    round_index > 0
                    and deadline is not None
                    and time.perf_counter() >= deadline
                ):
                    reports.append(
                        self._anytime_report(name, controller, spent, "cancelled")
                    )
                    continue
                tick = time.perf_counter()
                progressed = controller.step()
                spent += time.perf_counter() - tick
                if controller.best_score is not None:
                    consider(controller.best_score, controller.best_so_far(), name)
                if progressed:
                    still_active.append((name, controller, spent))
                else:
                    reports.append(
                        self._anytime_report(name, controller, spent, "finished")
                    )
            active = still_active
            round_index += 1
        return reports

    @staticmethod
    def _anytime_report(
        name: str, controller: AnytimeController, spent: float, status: str
    ) -> MemberReport:
        if _telemetry.is_enabled():
            _telemetry.observe(
                "portfolio.member.seconds",
                spent,
                algorithm=name,
                mode="anytime",
                status=status,
            )
        return MemberReport(
            algorithm=name,
            mode="anytime",
            status=status,
            score=controller.best_score,
            steps=controller.steps,
            elapsed_seconds=spent,
        )

    @staticmethod
    def _estimated_cost(name: str, dataset: Dataset) -> float:
        """Pessimistic wall-clock estimate for a one-shot member.

        Only the known-exponential solvers get a real estimate (they
        cannot be interrupted once started); everything else is treated as
        effectively free so it is always attempted.
        """
        if name not in _EXPONENTIAL_SOLVERS:
            return 0.0
        n = dataset.num_elements
        # Calibrated very roughly on the exact LPB solver: comfortable well
        # under a second up to ~10 elements, then growing exponentially.
        return 0.005 * (2.0 ** max(0, n - 8))
