"""Canonical telemetry instrument names of the serving layer.

The in-process :class:`~repro.service.frontend.ServiceFrontend` and the
socket-path HTTP layer (:mod:`repro.service.http`) must emit the *same*
``service.*`` instruments for the same events — a dashboard built against
the in-process stats has to keep working unchanged when the deployment
moves behind the network server, and rejected / deadline-expired requests
must be countable from either side without name translation.  Every
serving-side instrumentation site therefore imports its instrument name
from this module instead of spelling a string literal; the regression
suite (``tests/service/test_counter_parity.py``) drives both paths
through the same degradation scenarios and asserts the emitted
``service.*`` name sets are identical.

Instrument vocabulary
---------------------

``service.*``
    Emitted per *request outcome*, identically by both paths:
    :data:`SERVICE_REQUESTS` (labelled by response source),
    :data:`SERVICE_REJECTED` (labelled by rejection reason —
    ``overloaded`` / ``deadline`` / ``draining``), :data:`SERVICE_FAILED`
    and the :data:`SERVICE_QUEUE_SECONDS` /
    :data:`SERVICE_EXECUTION_SECONDS` latency histograms.

``http.*``
    Emitted only by the socket path, *in addition to* the shared
    vocabulary: :data:`HTTP_REQUESTS` (labelled by route and HTTP
    status), :data:`HTTP_REJECTED` (labelled by reason),
    :data:`HTTP_SHARD_ROUTE` (labelled by shard — the consistent-hash
    routing decision) and the :data:`HTTP_LATENCY_SECONDS` histogram
    (full socket-path latency including parse and serialization).
    Failover adds :data:`HTTP_SHARD_EJECTED` / :data:`HTTP_RESPAWNED`
    (dead process-mode workers leaving and rejoining the live ring) and
    :data:`HTTP_CLIENT_RETRY` (client-side transparent retries).

``journal.*``
    The write-ahead journal's instruments live with the journal itself
    (:mod:`repro.core.journal` — the core layer cannot import this
    module), listed here for the dashboard inventory: ``journal.appends``,
    ``journal.fsyncs``, ``journal.rotations``, ``journal.snapshots``,
    ``journal.replayed_records``, ``journal.truncated_records``,
    ``journal.recovered_sessions``.
"""

from __future__ import annotations

__all__ = [
    "SERVICE_REQUESTS",
    "SERVICE_REJECTED",
    "SERVICE_FAILED",
    "SERVICE_INVALIDATED",
    "SERVICE_QUEUE_SECONDS",
    "SERVICE_EXECUTION_SECONDS",
    "HTTP_REQUESTS",
    "HTTP_REJECTED",
    "HTTP_SHARD_ROUTE",
    "HTTP_LATENCY_SECONDS",
    "HTTP_SHARD_EJECTED",
    "HTTP_RESPAWNED",
    "HTTP_CLIENT_RETRY",
]

#: Counter: one increment per answered request, labelled ``source=``.
SERVICE_REQUESTS = "service.requests"

#: Counter: structured rejections (nothing executed), labelled ``reason=``.
SERVICE_REJECTED = "service.rejected"

#: Counter: computations that raised, labelled ``kind=`` (exception type).
SERVICE_FAILED = "service.failed"

#: Counter: cached responses purged on the live-serving write path.
SERVICE_INVALIDATED = "service.invalidated"

#: Histogram: per-request queue wait, labelled ``source=``.
SERVICE_QUEUE_SECONDS = "service.queue_seconds"

#: Histogram: per-request execution share, labelled ``source=``.
SERVICE_EXECUTION_SECONDS = "service.execution_seconds"

#: Counter: one increment per HTTP exchange, labelled ``route=``/``status=``.
HTTP_REQUESTS = "http.request"

#: Counter: socket-path rejections before dispatch, labelled ``reason=``.
HTTP_REJECTED = "http.rejected"

#: Counter: consistent-hash routing decisions, labelled ``shard=``.
HTTP_SHARD_ROUTE = "http.shard_route"

#: Histogram: full socket-path request latency, labelled ``route=``.
HTTP_LATENCY_SECONDS = "http.latency_seconds"

#: Counter: dead shards ejected from the live ring, labelled ``shard=``.
HTTP_SHARD_EJECTED = "http.shard_ejected"

#: Counter: ejected shards respawned and rejoined, labelled ``shard=``.
HTTP_RESPAWNED = "http.respawned"

#: Counter: client-side transparent retries, labelled ``kind=``
#: (``connect`` — the server was unreachable; ``transport`` — an
#: established connection died mid-exchange).
HTTP_CLIENT_RETRY = "http.client_retry"
