"""Anytime, budget-aware aggregation service layer.

The request-facing subsystem in front of the engine: the paper's closing
guidance (pick the right algorithm under real time constraints,
Section 7.4) turned into a serving stack.

* :mod:`repro.service.portfolio` — :class:`PortfolioScheduler` races
  guidance-chosen candidate algorithms under a shared wall-clock budget,
  stepping the anytime-capable local-search family incrementally
  (:mod:`repro.algorithms.anytime`) and skipping exponential solvers the
  remaining budget cannot cover; a deadline always yields the best
  consensus found so far.
* :mod:`repro.service.frontend` — :class:`ServiceFrontend` batches
  concurrent requests, coalesces identical dataset fingerprints, layers an
  in-memory LRU tier over the persistent disk result cache
  (:class:`repro.engine.TieredResultCache`) and records per-request
  latency / hit-rate statistics.
* :mod:`repro.service.live` — :class:`LiveAggregationSession` serves a
  :class:`~repro.core.live.LiveDataset` under streaming writes: mutations
  delta-update the pairwise weights and invalidate stale cached responses,
  repairs warm-start the anytime search from the pre-mutation consensus
  and re-publish under the new fingerprint.
* :mod:`repro.service.http` — the network face: an asyncio HTTP server
  (:class:`~repro.service.http.HttpAggregationServer`) fronting a pool of
  consistent-hash-routed shard workers
  (:class:`~repro.service.http.ShardPool`) with bounded admission,
  cross-connection coalescing, per-request deadlines and graceful drain,
  plus the matching :class:`~repro.service.http.AsyncHttpClient`.
* :mod:`repro.service.counters` — the canonical telemetry instrument
  names every serving surface shares, so one scrape aggregates the
  in-process and socket paths without name reconciliation.

Quickstart
----------

>>> from repro.generators import uniform_dataset
>>> from repro.service import PortfolioScheduler, ServiceFrontend, ServiceRequest
>>> dataset = uniform_dataset(5, 20, seed=7)
>>> result = PortfolioScheduler(budget_seconds=0.5).run(dataset)
>>> result.algorithm                                   # doctest: +SKIP
'BioConsert'
>>> frontend = ServiceFrontend(".repro-cache", default_budget_seconds=0.5)
>>> response = frontend.submit(ServiceRequest(dataset))  # doctest: +SKIP
>>> frontend.submit(ServiceRequest(dataset)).source      # doctest: +SKIP
'memory'
"""

from .frontend import ServiceFrontend, ServiceRequest, ServiceResponse, ServiceStats
from .http import (
    AsyncHttpClient,
    ConsistentHashRing,
    HttpAggregationServer,
    ShardPool,
)
from .live import LiveAggregationSession, RepairReport
from .portfolio import MemberReport, PortfolioResult, PortfolioScheduler

__all__ = [
    "PortfolioScheduler",
    "PortfolioResult",
    "MemberReport",
    "ServiceFrontend",
    "ServiceRequest",
    "ServiceResponse",
    "ServiceStats",
    "LiveAggregationSession",
    "RepairReport",
    "AsyncHttpClient",
    "ConsistentHashRing",
    "HttpAggregationServer",
    "ShardPool",
]
