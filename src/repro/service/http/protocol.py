"""JSON wire vocabulary of the HTTP serving layer.

One place defines what travels over the socket, shared by the server,
the shard workers (including process-mode workers, which ship payload
dictionaries across the pool boundary), the async client and the load
generator:

* **requests** — :func:`encode_aggregate_request` /
  :func:`decode_aggregate_request` turn a
  :class:`~repro.service.frontend.ServiceRequest` into a JSON body and
  back.  Datasets travel in the paper's plain-text ranking format
  (:mod:`repro.datasets.io`), embedded as one JSON string — the same
  bytes a dataset file holds, so any client that can write the text
  format can drive the server;
* **responses** — :func:`response_payload` flattens a
  :class:`~repro.service.frontend.ServiceResponse` (consensus buckets,
  score, source, the queue/execution latency split and the PR 7
  degradation vocabulary: ``ok`` / ``overloaded`` / ``deadline`` /
  ``draining`` / ``failed``); :func:`status_code_for` maps those
  statuses onto HTTP status codes;
* **identity** — :func:`result_fingerprint` digests the answer content
  (consensus, score, algorithm) so the load generator can assert that
  two replays against the same server state returned byte-identical
  results without storing the full payloads.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from ...datasets.dataset import Dataset
from ...datasets.io import dumps as dataset_dumps, loads as dataset_loads
from ...evaluation.guidance import Priority
from ..frontend import ServiceRequest, ServiceResponse

__all__ = [
    "AggregateRequestError",
    "encode_aggregate_request",
    "decode_aggregate_request",
    "response_payload",
    "coalesced_payload",
    "rejection_payload",
    "result_fingerprint",
    "status_code_for",
]

#: Degradation status → HTTP status code.  ``overloaded`` and ``draining``
#: both map to 503 (retry elsewhere / later), ``deadline`` to 504 (the
#: caller's time budget elapsed), ``too_large`` to 413 (the request body
#: exceeded the server's cap — shrink it, retrying is pointless),
#: ``failed`` to 500.
_STATUS_CODES = {
    "ok": 200,
    "overloaded": 503,
    "draining": 503,
    "deadline": 504,
    "too_large": 413,
    "failed": 500,
}


class AggregateRequestError(ValueError):
    """A request body that cannot be turned into a valid ServiceRequest.

    Raised by :func:`decode_aggregate_request`; the server answers it
    with a structured ``400 Bad Request`` instead of dispatching.
    """


def encode_aggregate_request(
    dataset: Dataset | str,
    *,
    name: str | None = None,
    priority: str | None = None,
    budget_seconds: float | None = None,
    deadline_seconds: float | None = None,
    algorithm: str | None = None,
    request_id: str | None = None,
) -> dict[str, Any]:
    """Build the JSON body of one ``POST /aggregate`` request.

    Parameters
    ----------
    dataset:
        The dataset to aggregate — a :class:`~repro.datasets.Dataset`
        (serialized to the text format) or an already-serialized text
        block.
    name:
        Dataset name echoed into telemetry labels (defaults to the
        dataset's own name).
    priority:
        Guidance priority for the portfolio race.
    budget_seconds:
        Per-request compute budget.
    deadline_seconds:
        Per-request total-latency deadline (queue wait included).
    algorithm:
        Pin one registry algorithm instead of racing a portfolio.
    request_id:
        Caller-side correlation id, echoed on the response.
    """
    if isinstance(dataset, Dataset):
        text = dataset_dumps(dataset, include_header=False)
        name = name if name is not None else dataset.name
    else:
        text = dataset
    payload: dict[str, Any] = {"dataset": text}
    if name is not None:
        payload["name"] = name
    if priority is not None:
        payload["priority"] = priority
    if budget_seconds is not None:
        payload["budget_seconds"] = budget_seconds
    if deadline_seconds is not None:
        payload["deadline_seconds"] = deadline_seconds
    if algorithm is not None:
        payload["algorithm"] = algorithm
    if request_id is not None:
        payload["request_id"] = request_id
    return payload


def decode_aggregate_request(payload: dict[str, Any]) -> ServiceRequest:
    """Parse one ``POST /aggregate`` body into a ServiceRequest.

    Parameters
    ----------
    payload:
        The decoded JSON body (see :func:`encode_aggregate_request`).

    Raises
    ------
    AggregateRequestError
        On a missing/empty dataset, an unparsable ranking line, an
        unknown priority or a non-positive budget/deadline.
    """
    if not isinstance(payload, dict):
        raise AggregateRequestError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    text = payload.get("dataset")
    if not isinstance(text, str) or not text.strip():
        raise AggregateRequestError(
            "request body needs a non-empty 'dataset' string "
            "(plain-text ranking format, one ranking per line)"
        )
    name = payload.get("name") or "http-dataset"
    try:
        dataset = dataset_loads(text, name=str(name))
    except Exception as error:  # InvalidRankingError and friends → 400
        raise AggregateRequestError(f"cannot parse dataset: {error}") from error
    if dataset.num_rankings == 0:
        raise AggregateRequestError("dataset contains no rankings")
    priority = payload.get("priority", Priority.BALANCED.value)
    try:
        priority = Priority(priority).value
    except ValueError as error:
        raise AggregateRequestError(f"unknown priority {priority!r}") from error
    budget = _optional_positive(payload, "budget_seconds")
    deadline = _optional_positive(payload, "deadline_seconds")
    algorithm = payload.get("algorithm")
    if algorithm is not None and not isinstance(algorithm, str):
        raise AggregateRequestError("'algorithm' must be a string when given")
    request_id = payload.get("request_id")
    if request_id is not None:
        request_id = str(request_id)
    return ServiceRequest(
        dataset=dataset,
        priority=priority,
        budget_seconds=budget,
        algorithm=algorithm,
        request_id=request_id,
        deadline_seconds=deadline,
    )


def _optional_positive(payload: dict[str, Any], field: str) -> float | None:
    """Read an optional strictly-positive float field or raise a 400 error."""
    value = payload.get(field)
    if value is None:
        return None
    try:
        value = float(value)
    except (TypeError, ValueError) as error:
        raise AggregateRequestError(f"{field!r} must be a number") from error
    if value <= 0:
        raise AggregateRequestError(f"{field!r} must be > 0, got {value}")
    return value


def response_payload(
    response: ServiceResponse, *, shard: str | None = None
) -> dict[str, Any]:
    """Flatten a ServiceResponse into its JSON wire form.

    Parameters
    ----------
    response:
        The response to serialize.
    shard:
        Name of the shard worker that answered (added for socket-path
        observability; absent on purely in-process payloads).
    """
    payload: dict[str, Any] = {
        "request_id": response.request_id,
        "status": response.status,
        "source": response.source,
        "algorithm": response.algorithm,
        "score": response.score,
        "consensus": (
            None
            if response.consensus is None
            else [list(bucket) for bucket in response.consensus.buckets]
        ),
        "latency_seconds": response.latency_seconds,
        "queue_seconds": response.queue_seconds,
        "execution_seconds": response.execution_seconds,
        "error": response.error,
    }
    if shard is not None:
        payload["shard"] = shard
    return payload


def coalesced_payload(
    leader: dict[str, Any], *, request_id: str | None, latency_seconds: float
) -> dict[str, Any]:
    """A coalesced follower's payload, derived from its leader's.

    The follower shares the leader's answer (consensus, score, status,
    error) but reports its own identity and wait: the full latency is
    queue time and nothing executed — exactly how
    :meth:`~repro.service.frontend.ServiceFrontend.submit_batch` accounts
    in-process followers.

    Parameters
    ----------
    leader:
        The leader's wire payload.
    request_id:
        The follower's own correlation id.
    latency_seconds:
        Time the follower waited for the shared answer.
    """
    follower = dict(leader)
    follower["request_id"] = request_id
    follower["source"] = "coalesced"
    follower["latency_seconds"] = latency_seconds
    follower["queue_seconds"] = latency_seconds
    follower["execution_seconds"] = 0.0
    return follower


def rejection_payload(
    *,
    status: str,
    error: str,
    request_id: str | None = None,
    queue_seconds: float = 0.0,
    shard: str | None = None,
) -> dict[str, Any]:
    """A structured degraded payload built without a ServiceResponse.

    Used where no shard frontend is reachable to produce one — malformed
    bodies, process-mode admission refusals, the drain window.

    Parameters
    ----------
    status:
        Degradation status (``overloaded`` / ``deadline`` / ``draining``
        / ``too_large`` / ``failed``).
    error:
        Human-readable refusal detail.
    request_id:
        Correlation id when the body got far enough to carry one.
    queue_seconds:
        Wait accumulated before the refusal.
    shard:
        Owning shard when routing already happened.
    """
    payload: dict[str, Any] = {
        "request_id": request_id,
        "status": status,
        "source": "rejected",
        "algorithm": "",
        "score": None,
        "consensus": None,
        "latency_seconds": queue_seconds,
        "queue_seconds": queue_seconds,
        "execution_seconds": 0.0,
        "error": error,
    }
    if shard is not None:
        payload["shard"] = shard
    return payload


def result_fingerprint(payload: dict[str, Any]) -> str:
    """Content digest of one answer (consensus + score + algorithm).

    Stable across replays: two responses carrying the same consensus,
    score and algorithm fingerprint identically whatever their latency,
    source tier or shard — the identity the load generator's determinism
    contract is stated against.

    Parameters
    ----------
    payload:
        A response wire payload (:func:`response_payload`).
    """
    document = {
        "consensus": payload.get("consensus"),
        "score": payload.get("score"),
        "algorithm": payload.get("algorithm"),
        "status": payload.get("status"),
    }
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def status_code_for(status: str) -> int:
    """HTTP status code for a degradation status (500 for unknown ones).

    Parameters
    ----------
    status:
        A response ``status`` value (``ok`` / ``overloaded`` /
        ``deadline`` / ``draining`` / ``too_large`` / ``failed``).
    """
    return _STATUS_CODES.get(status, 500)
