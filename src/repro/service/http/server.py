"""Asyncio HTTP/1.1 front door for the sharded aggregation service.

:class:`HttpAggregationServer` is a stdlib-only ``asyncio.start_server``
loop — no web framework — speaking just enough HTTP/1.1 (request line,
headers, ``Content-Length`` bodies, keep-alive) to put the serving stack
on a socket:

========================  =================================================
route                     behaviour
========================  =================================================
``POST /aggregate``       decode → route by dataset fingerprint → shard
                          pool dispatch (admission, coalescing, deadline)
``POST /live/{n}/open``   create a named
                          :class:`~repro.service.live.LiveAggregationSession`
``POST /live/{n}/mutate`` add/remove/update one ranking (delta-maintained
                          weights + cache invalidation)
``POST /live/{n}/repair`` warm-started consensus repair + re-publish
``GET  /live/{n}``        serve the session (repairing first when stale)
``GET  /healthz``         liveness + drain state
``GET  /stats``           server counters, pool topology, live sessions
========================  =================================================

Degradation statuses map onto HTTP codes via
:func:`~repro.service.http.protocol.status_code_for`: ``overloaded`` and
``draining`` answer 503, ``deadline`` 504, ``failed`` 500 — always with a
structured JSON body, never a bare error page.

**Graceful drain** (:meth:`HttpAggregationServer.drain`): the listener
closes, requests already executing run to completion and are answered,
requests arriving on kept-alive connections are refused with a
structured ``draining`` payload, and the call returns only once the last
in-flight response is flushed and the shard executors are released.
"""

from __future__ import annotations

import asyncio
import json
import re
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ...core.journal import journal_exists
from ...core.live import LiveDataset
from ...datasets.io import loads as dataset_loads, parse_ranking
from ...telemetry import runtime as _telemetry
from .. import counters as _counters
from ..frontend import ServiceFrontend
from ..live import LiveAggregationSession
from .protocol import (
    AggregateRequestError,
    decode_aggregate_request,
    rejection_payload,
    status_code_for,
)
from .worker import ShardPool, ShardRejection

__all__ = ["HttpAggregationServer", "HttpServerStats"]

#: Upper bound on request bodies (64 MiB — far above any paper-scale
#: dataset, small enough to stop a hostile Content-Length from
#: exhausting memory).
MAX_BODY_BYTES = 64 * 1024 * 1024
_MAX_HEADERS = 100
_LIVE_NAME = re.compile(r"^[A-Za-z0-9_.-]{1,128}$")


class _BodyTooLarge(Exception):
    """A Content-Length beyond :data:`MAX_BODY_BYTES` (answered 413)."""

    def __init__(self, length: int):
        super().__init__(f"request body of {length} bytes exceeds the cap")
        self.length = length


@dataclass
class HttpServerStats:
    """Socket-path accounting of one :class:`HttpAggregationServer`.

    Counts *HTTP-layer* outcomes; per-shard service accounting (cache
    tiers, latency splits) lives in each shard frontend's own
    :class:`~repro.service.frontend.ServiceStats` and is surfaced side by
    side under ``GET /stats``.

    Attributes
    ----------
    requests:
        HTTP requests answered (any route, any status).
    ok:
        ``/aggregate`` requests answered ``ok``.
    rejected:
        ``/aggregate`` requests refused by admission control or the
        drain window (``overloaded`` + ``draining``).
    deadline_expired:
        ``/aggregate`` requests whose deadline lapsed in a shard queue.
    failed:
        ``/aggregate`` requests whose computation raised.
    coalesced:
        ``/aggregate`` requests that shared another connection's
        in-flight computation.
    bad_requests:
        Bodies refused as unparsable (HTTP 400).
    too_large:
        Bodies refused for exceeding :data:`MAX_BODY_BYTES` (HTTP 413).
    live_requests:
        Requests handled by the ``/live`` session endpoints.
    by_source:
        ``/aggregate`` answers tallied by response source
        (``computed`` / ``memory`` / ``disk`` / ``coalesced`` /
        ``rejected``).
    """

    requests: int = 0
    ok: int = 0
    rejected: int = 0
    deadline_expired: int = 0
    failed: int = 0
    coalesced: int = 0
    bad_requests: int = 0
    too_large: int = 0
    live_requests: int = 0
    by_source: dict[str, int] = field(default_factory=dict)

    def record_aggregate(self, payload: dict[str, Any]) -> None:
        """Tally one ``/aggregate`` response payload.

        Parameters
        ----------
        payload:
            The wire payload that was (or is about to be) written.
        """
        status = str(payload.get("status") or "ok")
        source = str(payload.get("source") or "computed")
        if status == "ok":
            self.ok += 1
        elif status in ("overloaded", "draining"):
            self.rejected += 1
        elif status == "deadline":
            self.deadline_expired += 1
        else:
            self.failed += 1
        if source == "coalesced":
            self.coalesced += 1
        self.by_source[source] = self.by_source.get(source, 0) + 1

    def describe(self) -> dict[str, Any]:
        """Flat dictionary form (``GET /stats``, benchmark payloads)."""
        return {
            "requests": self.requests,
            "ok": self.ok,
            "rejected": self.rejected,
            "deadline_expired": self.deadline_expired,
            "failed": self.failed,
            "coalesced": self.coalesced,
            "bad_requests": self.bad_requests,
            "too_large": self.too_large,
            "live_requests": self.live_requests,
            "by_source": dict(self.by_source),
        }


class HttpAggregationServer:
    """Async HTTP server over a :class:`~repro.service.http.worker.ShardPool`.

    Parameters
    ----------
    cache_dir:
        Shared disk cache tier for the shard pool and the live-session
        frontend (``None`` disables caching).
    host:
        TCP bind address (ignored with ``unix_socket``).
    port:
        TCP port; ``0`` binds an ephemeral port (read it back from
        :attr:`port` after :meth:`start` — how the test suite avoids
        collisions).
    unix_socket:
        Bind a unix domain socket at this path instead of TCP.
    shards:
        Number of shard workers in the pool.
    mode:
        Shard execution mode, ``"thread"`` or ``"process"``.
    max_pending:
        Per-shard admission bound.
    default_budget_seconds:
        Compute budget for requests that do not carry one.
    seed:
        Seed shared by every frontend in the topology (shards and the
        live lane) — part of cache keys, so it must match for live
        re-publishes to be visible as shard cache hits.
    memory_entries:
        Per-shard memory cache tier capacity.
    replicas:
        Virtual points per shard on the routing ring.
    max_requests:
        Drain automatically after answering this many HTTP requests
        (CI smoke runs use it to exit deterministically without signal
        choreography).
    journal_dir:
        Root directory for live-session write-ahead journals (one
        subdirectory per session).  Sessions opened while it is set are
        journaled, and :meth:`start` recovers every journaled session it
        finds there — replaying the log and warm-repairing any that were
        mutated after their last published consensus.  ``None`` disables
        durability (the pre-journal behaviour).
    journal_fsync:
        Fsync policy for session journals
        (:data:`~repro.core.journal.FSYNC_POLICIES`).
    compact_every:
        Auto-compaction threshold forwarded to each journaled session.
    health_interval_seconds:
        Period of the background worker health loop (process mode): each
        tick probes every shard and ejects the ones whose worker process
        died, without waiting for a request to hit the corpse.  ``None``
        (default) leaves health checking to the request path.
    """

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_socket: str | Path | None = None,
        shards: int = 2,
        mode: str = "thread",
        max_pending: int = 64,
        default_budget_seconds: float | None = 0.25,
        seed: int | None = None,
        memory_entries: int = 256,
        replicas: int | None = None,
        max_requests: int | None = None,
        journal_dir: str | Path | None = None,
        journal_fsync: str = "batch",
        compact_every: int | None = None,
        health_interval_seconds: float | None = None,
    ):
        self.pool = ShardPool(
            cache_dir,
            shards=shards,
            mode=mode,
            max_pending=max_pending,
            default_budget_seconds=default_budget_seconds,
            seed=seed,
            memory_entries=memory_entries,
            replicas=replicas,
        )
        self.journal_dir = None if journal_dir is None else Path(journal_dir)
        self.journal_fsync = journal_fsync
        self.compact_every = compact_every
        self.health_interval_seconds = health_interval_seconds
        self.recovered_sessions: tuple[str, ...] = ()
        self._health_task: asyncio.Task[None] | None = None
        self.cache_dir = None if cache_dir is None else str(cache_dir)
        self.default_budget_seconds = default_budget_seconds
        self.seed = seed
        self.stats = HttpServerStats()
        self.max_requests = max_requests
        self._host = host
        self._port = port
        self._unix_socket = None if unix_socket is None else str(unix_socket)
        self._server: asyncio.AbstractServer | None = None
        self._draining = False
        self._drained = False
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._drained_event = asyncio.Event()
        self._connections: set[asyncio.StreamWriter] = set()
        self._sessions: dict[str, LiveAggregationSession] = {}
        # One serialized lane for live mutations/repairs: sessions are
        # stateful, so their operations must never interleave.
        self._live_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-http-live"
        )
        self._live_frontend = ServiceFrontend(
            cache_dir,
            default_budget_seconds=default_budget_seconds,
            seed=seed,
            memory_entries=memory_entries,
        )
        self._drain_task: asyncio.Task[None] | None = None

    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        """Bound address (resolved after :meth:`start`)."""
        return self._host

    @property
    def port(self) -> int:
        """Bound TCP port (the real one, after an ephemeral bind)."""
        return self._port

    @property
    def unix_socket(self) -> str | None:
        """Bound unix-socket path (``None`` on TCP)."""
        return self._unix_socket

    @property
    def draining(self) -> bool:
        """Whether the server has started (or finished) its drain."""
        return self._draining

    @property
    def live_sessions(self) -> tuple[str, ...]:
        """Names of the open live sessions."""
        return tuple(sorted(self._sessions))

    async def start(self) -> None:
        """Bind the socket, recover journaled sessions, accept connections."""
        if self._server is not None:
            raise RuntimeError("server already started")
        if self._unix_socket is not None:
            await self._remove_stale_unix_socket()
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self._unix_socket
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self._host, port=self._port
            )
            sockname = self._server.sockets[0].getsockname()
            self._host, self._port = sockname[0], sockname[1]
        await self.pool.warm_up()
        await self._recover_sessions()
        if self.health_interval_seconds is not None:
            self._health_task = asyncio.get_running_loop().create_task(
                self._health_loop()
            )

    async def _health_loop(self) -> None:
        """Periodically probe the shard workers and eject dead ones."""
        try:
            while not self._draining:
                await asyncio.sleep(self.health_interval_seconds)
                if self._draining:
                    return
                await self.pool.check_health()
        except asyncio.CancelledError:
            pass

    async def _remove_stale_unix_socket(self) -> None:
        """Unlink a socket file a crashed prior run left behind.

        A live server still answers on its socket, so the probe connects
        first: refusal (or a non-socket path error) means nobody is
        listening and the file is a stale leftover safe to remove; a
        successful connect means the address is genuinely taken.
        """
        path = Path(self._unix_socket)
        if not path.exists():
            return
        try:
            _, writer = await asyncio.open_unix_connection(self._unix_socket)
        except OSError:
            path.unlink(missing_ok=True)
            return
        writer.close()
        raise OSError(
            f"unix socket {self._unix_socket} is in use by a live server"
        )

    async def _recover_sessions(self) -> None:
        """Rebuild every journaled live session found under ``journal_dir``.

        Each session directory is replayed into a byte-identical dataset;
        sessions whose journal recorded mutations after the last published
        consensus are stale and get one warm-started repair immediately,
        so the first request they serve is already fresh.
        """
        if self.journal_dir is None or not self.journal_dir.is_dir():
            return
        recovered: list[str] = []
        loop = asyncio.get_running_loop()
        for directory in sorted(self.journal_dir.iterdir()):
            if not directory.is_dir() or not journal_exists(directory):
                continue
            name = directory.name
            session = await loop.run_in_executor(
                self._live_executor,
                lambda d=directory: LiveAggregationSession.recover(
                    d,
                    frontend=self._live_frontend,
                    budget_seconds=self.default_budget_seconds,
                    seed=self.seed,
                    journal_fsync=self.journal_fsync,
                    compact_every=self.compact_every,
                ),
            )
            if session.is_stale or session.consensus is None:
                await loop.run_in_executor(self._live_executor, session.repair)
            self._sessions[name] = session
            recovered.append(name)
        self.recovered_sessions = tuple(recovered)

    async def drain(self) -> None:
        """Stop accepting, finish in-flight work, release every executor.

        Idempotent; concurrent callers all wait for the same drain to
        complete.
        """
        self._draining = True
        if self._drained:
            return
        if self._health_task is not None:
            self._health_task.cancel()
            self._health_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._idle.wait()
        if self._drained:  # a concurrent drain finished while we waited
            return
        self._drained = True
        for writer in list(self._connections):
            writer.close()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.pool.shutdown)
        await loop.run_in_executor(None, self._live_executor.shutdown)
        for session in self._sessions.values():
            session.close()  # flush + fsync journals
        if self._unix_socket is not None:
            Path(self._unix_socket).unlink(missing_ok=True)
        self._drained_event.set()

    async def wait_drained(self) -> None:
        """Block until a drain (signal- or ``max_requests``-triggered) ends."""
        await self._drained_event.wait()

    # ------------------------------------------------------------------ #
    # Connection loop
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    parsed = await self._read_request(reader)
                except _BodyTooLarge as error:
                    # The oversized body was never read off the socket, so
                    # the connection cannot be reused: answer and close.
                    self.stats.requests += 1
                    self.stats.too_large += 1
                    if _telemetry.is_enabled():
                        _telemetry.count(
                            _counters.HTTP_REQUESTS, route="too_large", code=413
                        )
                    await self._write_response(
                        writer,
                        status_code_for("too_large"),
                        rejection_payload(status="too_large", error=str(error)),
                        keep_alive=False,
                    )
                    break
                if parsed is None:
                    break
                method, path, headers, body = parsed
                self._inflight += 1
                self._idle.clear()
                started = time.perf_counter()
                try:
                    code, payload = await self._dispatch(method, path, body)
                finally:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._idle.set()
                self.stats.requests += 1
                latency = time.perf_counter() - started
                if _telemetry.is_enabled():
                    route = self._route_label(method, path)
                    _telemetry.count(
                        _counters.HTTP_REQUESTS, route=route, code=code
                    )
                    _telemetry.observe(
                        _counters.HTTP_LATENCY_SECONDS, latency, route=route
                    )
                keep_alive = (
                    not self._draining
                    and headers.get("connection", "").lower() != "close"
                )
                if (
                    self.max_requests is not None
                    and self.stats.requests >= self.max_requests
                ):
                    keep_alive = False
                    self._schedule_drain()
                await self._write_response(
                    writer, code, payload, keep_alive=keep_alive
                )
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass  # peer went away mid-request; nothing to answer
        finally:
            self._connections.discard(writer)
            writer.close()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        """Parse one request; ``None`` when the peer closed the connection."""
        try:
            request_line = await reader.readline()
        except (ConnectionResetError, asyncio.LimitOverrunError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0:
            return None
        if length > MAX_BODY_BYTES:
            raise _BodyTooLarge(length)
        body = await reader.readexactly(length) if length else b""
        return method, target.split("?", 1)[0], headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        code: int,
        payload: dict[str, Any],
        *,
        keep_alive: bool,
    ) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 413: "Payload Too Large",
                  500: "Internal Server Error",
                  503: "Service Unavailable", 504: "Gateway Timeout"}
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {code} {reason.get(code, 'OK')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    def _schedule_drain(self) -> None:
        """Kick off the graceful drain once (``max_requests`` reached)."""
        if self._drain_task is None:
            self._drain_task = asyncio.get_running_loop().create_task(
                self.drain()
            )

    @staticmethod
    def _route_label(method: str, path: str) -> str:
        """Low-cardinality telemetry label for one request target."""
        if path.startswith("/live/"):
            suffix = path.split("/")[-1]
            kind = suffix if suffix in ("open", "mutate", "repair") else "serve"
            return f"{method} /live/:{kind}"
        return f"{method} {path}"

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        try:
            if path == "/healthz" and method == "GET":
                return 200, {
                    "status": "draining" if self._draining else "ok",
                    "shards": len(self.pool.shard_names),
                    "mode": self.pool.mode,
                }
            if path == "/stats" and method == "GET":
                return 200, await self._stats_payload()
            if path == "/aggregate" and method == "POST":
                return await self._handle_aggregate(body)
            if path.startswith("/live/"):
                return await self._handle_live(method, path, body)
            return 404, {"error": f"no route for {method} {path}"}
        except Exception as error:  # noqa: BLE001 — never tear the loop down
            self.stats.failed += 1
            return 500, {
                "status": "failed",
                "error": f"{type(error).__name__}: {error}",
            }

    async def _stats_payload(self) -> dict[str, Any]:
        live: dict[str, Any] = {}
        for name, session in sorted(self._sessions.items()):
            live[name] = {
                "generation": session.dataset.generation,
                "num_rankings": session.dataset.num_rankings,
                "stale": session.is_stale,
                "algorithm": session.algorithm_name,
                "score": session.score,
                "journaled": session.journal is not None,
                "recovered": name in self.recovered_sessions,
            }
        return {
            "server": self.stats.describe(),
            "pool": await self.pool.describe(),
            "live": live,
        }

    def _decode_body(self, body: bytes) -> dict[str, Any]:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError) as error:
            raise AggregateRequestError(f"body is not JSON: {error}") from error
        if not isinstance(payload, dict):
            raise AggregateRequestError("body must be a JSON object")
        return payload

    async def _handle_aggregate(
        self, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        try:
            wire = self._decode_body(body)
            request = decode_aggregate_request(wire)
        except AggregateRequestError as error:
            self.stats.bad_requests += 1
            return 400, {"status": "invalid", "error": str(error)}
        if self._draining:
            payload = rejection_payload(
                status="draining",
                error="server is draining; retry against another worker",
                request_id=request.request_id,
            )
            if _telemetry.is_enabled():
                _telemetry.count(_counters.SERVICE_REJECTED, reason="draining")
            self.stats.record_aggregate(payload)
            return status_code_for("draining"), payload
        try:
            payload, _shard = await self.pool.submit(request, wire=wire)
        except ShardRejection as rejection:
            payload = rejection_payload(
                status=rejection.status,
                error=rejection.error,
                request_id=request.request_id,
            )
            if _telemetry.is_enabled():
                _telemetry.count(
                    _counters.HTTP_REJECTED, reason=rejection.status
                )
            self.stats.record_aggregate(payload)
            return status_code_for(rejection.status), payload
        self.stats.record_aggregate(payload)
        return status_code_for(str(payload.get("status") or "ok")), payload

    # ------------------------------------------------------------------ #
    # Live sessions
    # ------------------------------------------------------------------ #
    async def _handle_live(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        segments = [part for part in path.split("/") if part]
        # segments: ["live", name] or ["live", name, action]
        if len(segments) < 2 or not _LIVE_NAME.match(segments[1]):
            return 404, {"error": f"bad live-session path {path!r}"}
        name = segments[1]
        action = segments[2] if len(segments) > 2 else None
        self.stats.live_requests += 1
        if self._draining:
            return 503, rejection_payload(
                status="draining", error="server is draining"
            )
        try:
            wire = self._decode_body(body)
        except AggregateRequestError as error:
            self.stats.bad_requests += 1
            return 400, {"status": "invalid", "error": str(error)}
        if method == "POST" and action == "open":
            return await self._live_open(name, wire)
        session = self._sessions.get(name)
        if session is None:
            return 404, {"error": f"no live session named {name!r}"}
        if method == "GET" and action is None:
            return await self._live_serve(session)
        if method == "POST" and action == "mutate":
            return await self._live_mutate(session, wire)
        if method == "POST" and action == "repair":
            return await self._live_repair(session, wire)
        return 405, {"error": f"no live action {method} {path}"}

    async def _live_open(
        self, name: str, wire: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        if name in self._sessions:
            return 400, {"error": f"live session {name!r} already open"}
        text = wire.get("dataset")
        if not isinstance(text, str) or not text.strip():
            self.stats.bad_requests += 1
            return 400, {
                "status": "invalid",
                "error": "live open needs a non-empty 'dataset' string",
            }
        algorithm = str(wire.get("algorithm") or "BioConsert")
        budget = wire.get("budget_seconds", self.default_budget_seconds)
        try:
            dataset = dataset_loads(text, name=name)
            session = LiveAggregationSession(
                LiveDataset(dataset.rankings, name=name),
                algorithm=algorithm,
                frontend=self._live_frontend,
                budget_seconds=None if budget is None else float(budget),
                seed=self.seed,
                journal_dir=(
                    None if self.journal_dir is None else self.journal_dir / name
                ),
                journal_fsync=self.journal_fsync,
                compact_every=self.compact_every,
            )
        except Exception as error:  # bad dataset / algorithm → 400
            self.stats.bad_requests += 1
            return 400, {
                "status": "invalid",
                "error": f"{type(error).__name__}: {error}",
            }
        self._sessions[name] = session
        return 200, {
            "session": name,
            "algorithm": algorithm,
            "num_rankings": session.dataset.num_rankings,
            "generation": session.dataset.generation,
            "fingerprint": session.dataset.content_fingerprint(),
        }

    async def _live_serve(
        self, session: LiveAggregationSession
    ) -> tuple[int, dict[str, Any]]:
        loop = asyncio.get_running_loop()
        report = await loop.run_in_executor(self._live_executor, session.serve)
        return 200, self._report_payload(session, report)

    async def _live_mutate(
        self, session: LiveAggregationSession, wire: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        op = wire.get("op")
        if op not in ("add", "remove", "update"):
            self.stats.bad_requests += 1
            return 400, {
                "status": "invalid",
                "error": f"'op' must be add/remove/update, got {op!r}",
            }
        index = wire.get("index")

        def _apply() -> None:
            if op == "add":
                session.add_ranking(
                    parse_ranking(str(wire.get("ranking") or "")),
                    None if index is None else int(index),
                )
            elif op == "remove":
                session.remove_ranking(int(index))
            else:
                session.update_ranking(
                    int(index), parse_ranking(str(wire.get("ranking") or ""))
                )

        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(self._live_executor, _apply)
        except Exception as error:  # bad ranking / index → 400
            self.stats.bad_requests += 1
            return 400, {
                "status": "invalid",
                "error": f"{type(error).__name__}: {error}",
            }
        return 200, {
            "session": session.dataset.name,
            "op": op,
            "generation": session.dataset.generation,
            "num_rankings": session.dataset.num_rankings,
            "fingerprint": session.dataset.content_fingerprint(),
            "stale": session.is_stale,
        }

    async def _live_repair(
        self, session: LiveAggregationSession, wire: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        budget = wire.get("budget_seconds")
        loop = asyncio.get_running_loop()
        report = await loop.run_in_executor(
            self._live_executor,
            lambda: session.repair(None if budget is None else float(budget)),
        )
        return 200, self._report_payload(session, report)

    @staticmethod
    def _report_payload(
        session: LiveAggregationSession, report: Any
    ) -> dict[str, Any]:
        payload = report.describe()
        payload["session"] = session.dataset.name
        payload["fingerprint"] = report.fingerprint  # undo describe()'s crop
        payload["consensus"] = [
            list(bucket) for bucket in report.consensus.buckets
        ]
        payload["num_rankings"] = session.dataset.num_rankings
        return payload

    def __repr__(self) -> str:
        bind = (
            self._unix_socket
            if self._unix_socket is not None
            else f"{self._host}:{self._port}"
        )
        return (
            f"HttpAggregationServer({bind}, shards={len(self.pool.shard_names)}, "
            f"mode={self.pool.mode!r}, draining={self._draining})"
        )
