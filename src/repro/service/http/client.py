"""Minimal asyncio HTTP/1.1 client for the aggregation server.

:class:`AsyncHttpClient` is the counterpart of
:class:`~repro.service.http.server.HttpAggregationServer`: one keep-alive
connection per client, JSON bodies, TCP or unix-socket transport.  It is
deliberately tiny — just what the load generator, the test suite and the
CLI smoke path need — and makes the same zero-dependency promise as the
server (stdlib asyncio only).

Degraded answers (``overloaded`` / ``deadline`` / ``draining`` /
``too_large`` / ``failed``) are **returned**, not raised: the server
always sends a structured JSON body, and callers such as the load
generator need to tally them, not crash on them.
:class:`HttpResponseError` is reserved for transport-level trouble — a
response that is not parseable JSON.

The client rides through server restarts: a request interrupted by a dying
connection is retried on a fresh one, and — when ``connect_retries`` is
set — connection *refusals* are retried with exponential backoff
(starting at ``connect_backoff_seconds``), long enough to bridge a
supervisor respawning a crashed server.  The default of zero keeps
refusals fail-fast for callers that treat them as a signal (drain tests,
health probes); resilient callers such as the kill-restart harness opt
in.  Every transparent retry is tallied on
:attr:`AsyncHttpClient.retries` and the ``http.client_retry`` counter.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from ...datasets.dataset import Dataset
from ...telemetry import runtime as _telemetry
from .. import counters as _counters
from .protocol import encode_aggregate_request

__all__ = ["AsyncHttpClient", "HttpResponseError"]


class HttpResponseError(RuntimeError):
    """A response whose body could not be parsed as JSON.

    Attributes
    ----------
    code:
        The HTTP status code of the offending response.
    body:
        Its raw (undecodable) body bytes.
    """

    def __init__(self, code: int, body: bytes):
        super().__init__(f"HTTP {code} with non-JSON body ({len(body)} bytes)")
        self.code = code
        self.body = body


class AsyncHttpClient:
    """One keep-alive HTTP/1.1 connection to an aggregation server.

    Parameters
    ----------
    host:
        Server address (TCP transport).
    port:
        Server port (TCP transport).
    unix_socket:
        Connect over a unix domain socket at this path instead of TCP.
    connect_retries:
        Extra connection attempts after a refusal before the error
        propagates (each preceded by an exponentially growing backoff).
        ``0`` fails fast on the first refusal.
    connect_backoff_seconds:
        Backoff before the first connect retry; doubles per attempt.

    Notes
    -----
    Not safe for concurrent requests on one instance — HTTP/1.1
    serializes request/response pairs on a connection.  Open one client
    per concurrent worker (the load generator does exactly that).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        unix_socket: str | None = None,
        connect_retries: int = 0,
        connect_backoff_seconds: float = 0.05,
    ):
        self.host = host
        self.port = port
        self.unix_socket = unix_socket
        self.connect_retries = connect_retries
        self.connect_backoff_seconds = connect_backoff_seconds
        #: Transparent retries performed so far (connect + transport).
        self.retries = 0
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _connect(self) -> None:
        if self._writer is not None and not self._writer.is_closing():
            return
        backoff = self.connect_backoff_seconds
        for attempt in range(self.connect_retries + 1):
            try:
                if self.unix_socket is not None:
                    self._reader, self._writer = (
                        await asyncio.open_unix_connection(self.unix_socket)
                    )
                else:
                    self._reader, self._writer = await asyncio.open_connection(
                        self.host, self.port
                    )
                return
            except (ConnectionRefusedError, FileNotFoundError):
                # Refusal can be transient — a supervisor may be rebinding
                # the address right now.  Back off and retry.
                if attempt >= self.connect_retries:
                    raise
                self._count_retry("connect")
                await asyncio.sleep(backoff)
                backoff *= 2

    def _count_retry(self, kind: str) -> None:
        self.retries += 1
        if _telemetry.is_enabled():
            _telemetry.count(_counters.HTTP_CLIENT_RETRY, kind=kind)

    async def request(
        self,
        method: str,
        path: str,
        payload: dict[str, Any] | None = None,
    ) -> tuple[int, dict[str, Any]]:
        """Send one request; returns ``(http_code, decoded_json_body)``.

        Reconnects transparently when the server closed the previous
        keep-alive connection (e.g. after answering with
        ``Connection: close`` during a drain).

        Parameters
        ----------
        method:
            HTTP method (``GET`` / ``POST``).
        path:
            Request target (``/aggregate``, ``/stats``, ...).
        payload:
            JSON body (omitted entirely when ``None``).
        """
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        for attempt in (0, 1):
            await self._connect()
            assert self._reader is not None and self._writer is not None
            host = self.unix_socket or f"{self.host}:{self.port}"
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "\r\n"
            )
            try:
                self._writer.write(head.encode("latin-1") + body)
                await self._writer.drain()
                return await self._read_response(self._reader)
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.IncompleteReadError,
            ):
                await self.close()
                if attempt:  # second failure is real
                    raise
                self._count_retry("transport")
        raise RuntimeError("unreachable")  # pragma: no cover

    async def _read_response(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict[str, Any]]:
        status_line = await reader.readline()
        if not status_line:
            raise asyncio.IncompleteReadError(b"", None)
        code = int(status_line.decode("latin-1").split()[1])
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        raw = await reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (ValueError, UnicodeDecodeError) as error:
            raise HttpResponseError(code, raw) from error
        return code, payload

    # ------------------------------------------------------------------ #
    # Convenience wrappers
    # ------------------------------------------------------------------ #
    async def aggregate(
        self,
        dataset: Dataset | str,
        *,
        priority: str | None = None,
        budget_seconds: float | None = None,
        deadline_seconds: float | None = None,
        algorithm: str | None = None,
        request_id: str | None = None,
    ) -> tuple[int, dict[str, Any]]:
        """``POST /aggregate`` for one dataset.

        Parameters
        ----------
        dataset:
            A :class:`~repro.datasets.Dataset` or already-serialized
            ranking text.
        priority:
            Guidance priority for the portfolio race.
        budget_seconds:
            Per-request compute budget.
        deadline_seconds:
            Per-request total-latency deadline.
        algorithm:
            Pin one registry algorithm.
        request_id:
            Correlation id echoed on the response.
        """
        return await self.request(
            "POST",
            "/aggregate",
            encode_aggregate_request(
                dataset,
                priority=priority,
                budget_seconds=budget_seconds,
                deadline_seconds=deadline_seconds,
                algorithm=algorithm,
                request_id=request_id,
            ),
        )

    async def healthz(self) -> tuple[int, dict[str, Any]]:
        """``GET /healthz`` — liveness and drain state."""
        return await self.request("GET", "/healthz")

    async def server_stats(self) -> tuple[int, dict[str, Any]]:
        """``GET /stats`` — server counters, pool topology, live sessions."""
        return await self.request("GET", "/stats")

    async def close(self) -> None:
        """Close the underlying connection (reconnects lazily if reused)."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "AsyncHttpClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()
