"""Consistent hashing: stable fingerprint → shard routing.

The HTTP layer routes every aggregation request by its dataset's content
fingerprint so all traffic for one dataset lands on one shard worker —
that is what makes the shard's private memory cache tier and
cross-connection coalescing effective.  Plain modulo routing would remap
almost every fingerprint whenever the worker pool is resized, throwing
away every warm memory tier at once.  A consistent-hash ring remaps only
``~1/(k+1)`` of the keyspace when the pool grows from ``k`` to ``k+1``
shards (the property test in ``tests/service/test_hashring.py`` pins
this), so a resize costs one shard's worth of cache warmth, not all of
it.

The ring is the classic construction: each shard contributes
``replicas`` virtual points placed by SHA-256 on a 64-bit circle; a key
routes to the first point at or after its own hash position (wrapping
around).  SHA-256 keeps placement deterministic across processes and
Python versions — no ``hash()`` randomization.
"""

from __future__ import annotations

import bisect
import hashlib
from collections.abc import Sequence

__all__ = ["ConsistentHashRing", "DEFAULT_REPLICAS"]

#: Virtual points per shard; 96 keeps the max/min shard load ratio small
#: (≲1.6 for realistic pool sizes) while ring construction stays cheap.
DEFAULT_REPLICAS = 96


def _position(token: str) -> int:
    """64-bit ring position of ``token`` (first 8 bytes of its SHA-256)."""
    return int.from_bytes(
        hashlib.sha256(token.encode("utf-8")).digest()[:8], "big"
    )


class ConsistentHashRing:
    """Deterministic consistent-hash ring over named shards.

    Parameters
    ----------
    shards:
        Shard names (order-insensitive: the ring layout depends only on
        the *set* of names, so two processes configured with the same
        shards route identically).  Must be non-empty and duplicate-free.
    replicas:
        Virtual points per shard (load-smoothing factor).
    """

    def __init__(
        self, shards: Sequence[str], *, replicas: int = DEFAULT_REPLICAS
    ):
        names = list(shards)
        if not names:
            raise ValueError("a hash ring needs at least one shard")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate shard names: {sorted(names)}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.shards = tuple(sorted(names))
        self.replicas = replicas
        points: list[tuple[int, str]] = []
        for shard in self.shards:
            for replica in range(replicas):
                points.append((_position(f"{shard}#{replica}"), shard))
        points.sort()
        self._positions = [position for position, _ in points]
        self._owners = [shard for _, shard in points]

    # ------------------------------------------------------------------ #
    def route(self, key: str) -> str:
        """The shard owning ``key`` (first ring point at/after its hash).

        Parameters
        ----------
        key:
            Routing key — the dataset content fingerprint on the serving
            path.  The same key always routes to the same shard within a
            ring.
        """
        position = _position(key)
        index = bisect.bisect_left(self._positions, position)
        if index == len(self._positions):
            index = 0  # wrap around the circle
        return self._owners[index]

    def with_shards(self, shards: Sequence[str]) -> "ConsistentHashRing":
        """A new ring over a resized pool, same replica factor.

        Parameters
        ----------
        shards:
            The new shard-name set.
        """
        return ConsistentHashRing(shards, replicas=self.replicas)

    def distribution(self, keys: Sequence[str]) -> dict[str, int]:
        """Route every key and count per-shard ownership (diagnostics).

        Parameters
        ----------
        keys:
            Routing keys to tally.
        """
        counts = {shard: 0 for shard in self.shards}
        for key in keys:
            counts[self.route(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self.shards)

    def __repr__(self) -> str:
        return (
            f"ConsistentHashRing(shards={list(self.shards)!r}, "
            f"replicas={self.replicas})"
        )
