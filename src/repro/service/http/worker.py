"""Sharded workers: per-shard caches, admission control, coalescing.

A :class:`ShardPool` owns ``k`` shard workers.  Each shard is one
single-worker executor — so everything routed to a shard executes
serially, giving the shard exclusive ownership of its state — plus one
:class:`~repro.service.frontend.ServiceFrontend` whose
:class:`~repro.engine.TieredResultCache` layers a *private* memory tier
over a *shared* disk tier: shards never contend on hot in-memory
lookups, while every record any shard computes is visible to all of them
(and to other server processes) through the disk.

Requests are routed by dataset content fingerprint over a
:class:`~repro.service.http.hashring.ConsistentHashRing`, so all traffic
for one dataset lands on the shard whose memory tier is warm for it.

Two execution modes share one dispatch path:

* ``mode="thread"`` (default) — shards are single-thread executors over
  in-process frontends.  Cheap, fully introspectable, and every
  rejection/answer is recorded in the shard frontend's own session
  registry (the counter-parity contract with the in-process API).
* ``mode="process"`` — shards are single-worker process pools; each
  worker process lazily builds its shard's frontend on first use and
  keeps it for the pool's lifetime.  Real CPU parallelism across shards
  for compute-bound traffic, at the price of shipping request payloads
  across the process boundary.

Graceful degradation reuses the PR 7 vocabulary end to end: bounded
admission (``max_pending`` per shard) answers excess load with
structured ``overloaded`` payloads before anything executes, a request
whose ``deadline_seconds`` elapsed while queued inside its shard is
answered ``deadline``, and identical concurrent requests — *across
connections*, not just within one batch — coalesce onto a single
computation, followers reporting ``source="coalesced"``.

**Failover** (process mode): a worker process that dies — SIGKILL, OOM,
an injected ``shard.worker`` crash — surfaces driver-side as a
``BrokenProcessPool``.  The pool then *ejects* the shard from the live
routing ring (``http.shard_ejected``), re-routes the interrupted request
to the ring successor, and *respawns* the worker in the background: a
fresh process pool is warmed up and, once answering, the shard rejoins
the ring (``http.respawned``).  Respawned workers rebuild their memory
tier lazily from the shared disk cache — per-shard state is a cache, not
a source of truth; the durable truth for live sessions is the
write-ahead journal (:mod:`repro.core.journal`), replayed by the server
layer.  :meth:`ShardPool.check_health` provides the proactive probe the
server's health loop runs between requests — a worker that is merely
*slow* stays in the ring, one whose pool is broken is ejected without
waiting for a request to find out.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ...core.ranking import Ranking
from ...telemetry import runtime as _telemetry
from ...testing import faults as _faults
from .. import counters as _counters
from ..frontend import ServiceFrontend, ServiceRequest, ServiceResponse
from .hashring import ConsistentHashRing
from .protocol import (
    decode_aggregate_request,
    encode_aggregate_request,
    rejection_payload,
    response_payload,
)

__all__ = ["ShardPool", "ShardRejection", "DEFAULT_MAX_PENDING"]

#: Per-shard admission bound: leaders queued or executing beyond which new
#: work is refused with a structured ``overloaded`` payload.
DEFAULT_MAX_PENDING = 64


class _EmptyRing:
    """Stand-in routing ring while *every* shard is ejected.

    Keeps the live-ring interface alive (``shards`` is empty, ``route``
    refuses) so the dispatch path degrades to structured failures instead
    of tripping over a ring that cannot be built with zero members.
    """

    shards: tuple[str, ...] = ()

    def route(self, key: str) -> str:
        raise ShardRejection(
            "overloaded", "every shard is ejected; retry after a respawn"
        )


class ShardRejection(Exception):
    """A request refused before dispatch (admission control / draining).

    Attributes
    ----------
    status:
        Degradation status (``overloaded`` / ``draining``).
    error:
        Human-readable refusal detail.
    """

    def __init__(self, status: str, error: str):
        super().__init__(error)
        self.status = status
        self.error = error


@dataclass
class _Shard:
    """Runtime state of one shard worker (private to the pool)."""

    name: str
    executor: Executor
    frontend: ServiceFrontend | None  # thread mode only
    pending: int = 0
    routed: int = 0
    coalesced: int = 0
    rejected: int = 0
    pid: int | None = None  # worker process id (process mode, post warm-up)
    dead: bool = False  # ejected from the live ring, awaiting respawn
    ejections: int = 0
    respawns: int = 0
    inflight: dict[str, "asyncio.Future[dict[str, Any]]"] = field(
        default_factory=dict
    )


# --------------------------------------------------------------------------- #
# Executor-side entry points (module level: picklable for process pools)
# --------------------------------------------------------------------------- #
_PROCESS_FRONTENDS: dict[str, ServiceFrontend] = {}


def _process_frontend(config: dict[str, Any]) -> ServiceFrontend:
    """The worker process's long-lived frontend for one shard.

    Keyed by shard name: each shard's pool has exactly one worker
    process, so the frontend (and its memory cache tier) survives across
    requests exactly like a thread-mode shard's does.
    """
    frontend = _PROCESS_FRONTENDS.get(config["shard"])
    if frontend is None:
        frontend = ServiceFrontend(
            config["cache_dir"],
            default_budget_seconds=config["default_budget_seconds"],
            seed=config["seed"],
            memory_entries=config["memory_entries"],
        )
        _PROCESS_FRONTENDS[config["shard"]] = frontend
    return frontend


def _answer_with(
    frontend: ServiceFrontend,
    request: ServiceRequest,
    deadline_at: float | None,
    enqueued_wall: float,
    shard: str,
) -> dict[str, Any]:
    """Deadline check + submit, on the shard's own executor thread/process.

    Wall-clock (not monotonic) deadlines on purpose: the enqueue stamp
    and the check may happen in different processes.
    """
    queue_seconds = max(0.0, time.time() - enqueued_wall)
    if deadline_at is not None and time.time() >= deadline_at:
        response = frontend.reject(
            request,
            status="deadline",
            error=(
                f"deadline expired after {queue_seconds:.3f}s in the "
                f"{shard} queue"
            ),
            queue_seconds=queue_seconds,
        )
    else:
        response = frontend.submit(request, queue_seconds=queue_seconds)
    return response_payload(response, shard=shard)


def _thread_answer(
    frontend: ServiceFrontend,
    request: ServiceRequest,
    deadline_at: float | None,
    enqueued_wall: float,
    shard: str,
    attempt: int = 0,
) -> dict[str, Any]:
    """Thread-mode executor entry point."""
    _faults.maybe_fire("shard.worker", key=shard, attempt=attempt)
    return _answer_with(frontend, request, deadline_at, enqueued_wall, shard)


def _process_answer(
    config: dict[str, Any],
    wire: dict[str, Any],
    deadline_at: float | None,
    enqueued_wall: float,
    attempt: int = 0,
) -> dict[str, Any]:
    """Process-mode executor entry point (receives the wire payload)."""
    # Fired inside the worker, so an injected crash is a *genuine* process
    # death (os._exit) the driver sees as BrokenProcessPool — the same
    # failure a SIGKILL produces.  ``attempt`` is the failover ordinal:
    # a rule with max_attempt=1 kills the first dispatch and lets the
    # re-routed retry through.
    _faults.maybe_fire("shard.worker", key=config["shard"], attempt=attempt)
    frontend = _process_frontend(config)
    request = decode_aggregate_request(wire)
    return _answer_with(
        frontend, request, deadline_at, enqueued_wall, config["shard"]
    )


def _process_describe(config: dict[str, Any]) -> dict[str, Any]:
    """Fetch the worker-process frontend's session accounting."""
    return _process_frontend(config).describe()


def _process_warmup(config: dict[str, Any]) -> dict[str, Any]:
    """Force worker start + frontend construction; returns identity info.

    The pid travels back so the driver can expose it (``GET /stats``) —
    the hook the kill-restart harness uses to SIGKILL a real worker.
    """
    _process_frontend(config)
    return {"shard": config["shard"], "pid": os.getpid()}


def _process_ping() -> int:
    """Health-probe entry point: proves the worker answers at all."""
    return os.getpid()


class ShardPool:
    """Consistent-hash-routed pool of shard workers.

    Parameters
    ----------
    cache_dir:
        The shared disk cache tier every shard writes through to
        (``None`` disables caching entirely — each shard frontend
        computes every request).
    shards:
        Number of shard workers.
    mode:
        ``"thread"`` (in-process frontends, default) or ``"process"``
        (one worker process per shard).
    max_pending:
        Per-shard admission bound; requests arriving while a shard
        already has this many leaders queued/executing are refused with
        a structured ``overloaded`` payload.
    default_budget_seconds:
        Compute budget for requests that do not carry one.
    seed:
        Seed forwarded to every shard frontend (part of cache keys).
    memory_entries:
        Capacity of each shard's private memory cache tier.
    replicas:
        Virtual points per shard on the routing ring.
    """

    def __init__(
        self,
        cache_dir: str | Path | None,
        *,
        shards: int = 2,
        mode: str = "thread",
        max_pending: int = DEFAULT_MAX_PENDING,
        default_budget_seconds: float | None = 0.25,
        seed: int | None = None,
        memory_entries: int = 256,
        replicas: int | None = None,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if mode not in ("thread", "process"):
            raise ValueError(f"mode must be 'thread' or 'process', got {mode!r}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if mode == "process" and cache_dir is None:
            raise ValueError("process mode needs a cache_dir (shared disk tier)")
        self.cache_dir = None if cache_dir is None else str(cache_dir)
        self.mode = mode
        self.max_pending = max_pending
        self.default_budget_seconds = default_budget_seconds
        self.seed = seed
        self.memory_entries = memory_entries
        names = [f"shard-{index}" for index in range(shards)]
        ring_kwargs = {} if replicas is None else {"replicas": replicas}
        self.ring = ConsistentHashRing(names, **ring_kwargs)
        self._shards: dict[str, _Shard] = {}
        for name in names:
            if mode == "thread":
                executor: Executor = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix=f"repro-http-{name}"
                )
                frontend = ServiceFrontend(
                    cache_dir,
                    default_budget_seconds=default_budget_seconds,
                    seed=seed,
                    memory_entries=memory_entries,
                )
            else:
                executor = ProcessPoolExecutor(max_workers=1)
                frontend = None
            self._shards[name] = _Shard(name, executor, frontend)
        # Routing happens on the *live* ring: the full ring minus ejected
        # shards.  They are the same object until a worker dies.
        self._live_ring = self.ring
        self._respawn_tasks: set[asyncio.Task[None]] = set()
        self._closing = False

    # ------------------------------------------------------------------ #
    @property
    def shard_names(self) -> tuple[str, ...]:
        """The shard names, in ring order."""
        return self.ring.shards

    @property
    def live_shard_names(self) -> tuple[str, ...]:
        """The shards currently in the routing ring (dead ones ejected)."""
        return self._live_ring.shards

    def route(self, fingerprint: str) -> str:
        """The live shard owning one dataset content fingerprint.

        While a shard is ejected, its keys route to the ring successor;
        once it respawns, they route back.

        Parameters
        ----------
        fingerprint:
            A dataset content fingerprint
            (:meth:`~repro.datasets.Dataset.content_fingerprint`).
        """
        return self._live_ring.route(fingerprint)

    def worker_pids(self) -> dict[str, int | None]:
        """Worker process id per shard (``None`` in thread mode / pre-warm-up)."""
        return {shard.name: shard.pid for shard in self._shards.values()}

    def frontend_of(self, shard: str) -> ServiceFrontend | None:
        """The in-process frontend of one shard (``None`` in process mode).

        Parameters
        ----------
        shard:
            A shard name from :attr:`shard_names`.
        """
        return self._shards[shard].frontend

    async def warm_up(self) -> list[str]:
        """Start every shard worker (process-mode import/fork cost) now.

        Returns the shard names that answered, so callers can assert the
        whole pool is live before timing anything against it.
        """
        loop = asyncio.get_running_loop()
        jobs = []
        for shard in self._shards.values():
            if self.mode == "process":
                jobs.append(
                    loop.run_in_executor(
                        shard.executor, _process_warmup, self._config(shard.name)
                    )
                )
            else:
                jobs.append(
                    loop.run_in_executor(shard.executor, lambda s=shard: s.name)
                )
        answers = list(await asyncio.gather(*jobs))
        names = []
        for answer in answers:
            if isinstance(answer, dict):
                self._shards[answer["shard"]].pid = answer["pid"]
                names.append(answer["shard"])
            else:
                names.append(answer)
        return names

    # ------------------------------------------------------------------ #
    async def submit(
        self,
        request: ServiceRequest,
        *,
        wire: dict[str, Any] | None = None,
    ) -> tuple[dict[str, Any], str]:
        """Route, admit and answer one request; returns (payload, shard).

        The single dispatch path behind ``POST /aggregate``:

        1. route by the dataset's content fingerprint;
        2. coalesce — an identical request already in flight on the shard
           (same fingerprint + parameters) makes this one a follower that
           awaits the leader's answer and reports ``coalesced``;
        3. admit — a shard at ``max_pending`` leaders refuses with a
           structured ``overloaded`` payload (raised as
           :class:`ShardRejection` for the server to answer);
        4. execute on the shard's single-worker executor, checking the
           request's deadline right before computing;
        5. fail over — a worker process that dies mid-request
           (``BrokenProcessPool``) is ejected from the live ring and the
           request retries on the ring successor; the dead worker
           respawns in the background.

        Parameters
        ----------
        request:
            The decoded request.
        wire:
            The original JSON body (process mode ships it to the worker
            instead of pickling the request; re-encoded when absent).
        """
        fingerprint = request.dataset.content_fingerprint()
        shard = self._shards[self._live_ring.route(fingerprint)]
        shard.routed += 1
        if _telemetry.is_enabled():
            _telemetry.count(_counters.HTTP_SHARD_ROUTE, shard=shard.name)
        key = self._coalesce_key(request, fingerprint)
        arrived = time.perf_counter()
        while True:
            existing = shard.inflight.get(key)
            if existing is None:
                break
            leader = await asyncio.shield(existing)
            if leader.get("status") == "deadline":
                # The leader died waiting on its own deadline; promote
                # this follower to leader (mirrors submit_batch).
                continue
            waited = time.perf_counter() - arrived
            shard.coalesced += 1
            response = self._follower_response(request, leader, waited)
            self._account(shard, response)
            return response_payload(response, shard=shard.name), shard.name

        if shard.pending >= self.max_pending:
            shard.rejected += 1
            error = (
                f"{shard.name} admission queue full "
                f"({shard.pending} pending, max_pending={self.max_pending})"
            )
            if shard.frontend is not None:
                shard.frontend.reject(
                    request, status="overloaded", error=error
                )
            elif _telemetry.is_enabled():
                _telemetry.count(_counters.SERVICE_REJECTED, reason="overloaded")
            raise ShardRejection("overloaded", error)

        loop = asyncio.get_running_loop()
        # One future for the whole failover episode: followers coalesced
        # onto this leader (on whichever shard) are resolved exactly once,
        # with the *final* payload — never an intermediate worker death.
        future: asyncio.Future[dict[str, Any]] = loop.create_future()
        registered = [shard]
        shard.pending += 1
        shard.inflight[key] = future
        enqueued_wall = time.time()
        deadline_at = (
            None
            if request.deadline_seconds is None
            else enqueued_wall + request.deadline_seconds
        )
        attempt = 0
        try:
            while True:
                try:
                    payload = await self._dispatch(
                        shard, request, wire, deadline_at, enqueued_wall, attempt
                    )
                    break
                except BrokenProcessPool:
                    # The worker died under this request (SIGKILL, OOM, an
                    # injected crash).  Eject it, re-route to the ring
                    # successor, keep the same leader future.
                    self._eject(shard)
                    attempt += 1
                    if not self._live_ring.shards or attempt > len(self._shards):
                        payload = rejection_payload(
                            status="failed",
                            error=(
                                f"worker of {shard.name} died and no live "
                                "shard remains to fail over to"
                            ),
                            request_id=request.request_id,
                            shard=shard.name,
                        )
                        break
                    shard.pending -= 1
                    shard = self._shards[self._live_ring.route(fingerprint)]
                    shard.routed += 1
                    shard.pending += 1
                    if _telemetry.is_enabled():
                        _telemetry.count(
                            _counters.HTTP_SHARD_ROUTE, shard=shard.name
                        )
                    if shard.inflight.get(key) is None:
                        shard.inflight[key] = future
                        registered.append(shard)
                except Exception as error:  # noqa: BLE001 — degrade, don't tear down
                    if _telemetry.is_enabled():
                        _telemetry.count(
                            _counters.SERVICE_FAILED, kind=type(error).__name__
                        )
                    payload = rejection_payload(
                        status="failed",
                        error=f"{type(error).__name__}: {error}",
                        request_id=request.request_id,
                        shard=shard.name,
                    )
                    break
        finally:
            shard.pending -= 1
            for owner in registered:
                if owner.inflight.get(key) is future:
                    del owner.inflight[key]
            future.set_result(payload)
        if self.mode == "process":
            # The worker-process frontend recorded the response in its own
            # registry; mirror the shared telemetry instruments driver-side
            # so one scrape sees the whole topology.
            self._observe_payload(payload)
        return payload, shard.name

    async def _dispatch(
        self,
        shard: _Shard,
        request: ServiceRequest,
        wire: dict[str, Any] | None,
        deadline_at: float | None,
        enqueued_wall: float,
        attempt: int,
    ) -> dict[str, Any]:
        """Run one request on one shard's executor (one failover attempt)."""
        loop = asyncio.get_running_loop()
        if self.mode == "thread":
            return await loop.run_in_executor(
                shard.executor,
                _thread_answer,
                shard.frontend,
                request,
                deadline_at,
                enqueued_wall,
                shard.name,
                attempt,
            )
        return await loop.run_in_executor(
            shard.executor,
            _process_answer,
            self._config(shard.name),
            wire
            if wire is not None
            else encode_aggregate_request(
                request.dataset,
                priority=request.priority,
                budget_seconds=request.budget_seconds,
                algorithm=request.algorithm,
                request_id=request.request_id,
            ),
            deadline_at,
            enqueued_wall,
            attempt,
        )

    # ------------------------------------------------------------------ #
    # Failover
    # ------------------------------------------------------------------ #
    def _rebuild_live_ring(self) -> None:
        survivors = [
            name for name in self.ring.shards if not self._shards[name].dead
        ]
        if len(survivors) == len(self.ring.shards):
            self._live_ring = self.ring
        elif survivors:
            self._live_ring = self.ring.with_shards(survivors)
        else:
            self._live_ring = _EmptyRing()

    def _eject(self, shard: _Shard) -> None:
        """Remove a dead shard from the live ring and schedule its respawn."""
        if shard.dead:
            return
        shard.dead = True
        shard.pid = None
        shard.ejections += 1
        self._rebuild_live_ring()
        if _telemetry.is_enabled():
            _telemetry.count(_counters.HTTP_SHARD_EJECTED, shard=shard.name)
        # The broken pool cannot be reused; release it without waiting
        # (its worker is already gone).
        shard.executor.shutdown(wait=False)
        if not self._closing:
            task = asyncio.get_running_loop().create_task(self._respawn(shard))
            self._respawn_tasks.add(task)
            task.add_done_callback(self._respawn_tasks.discard)

    async def _respawn(self, shard: _Shard) -> None:
        """Start a fresh worker for an ejected shard and rejoin the ring."""
        executor = ProcessPoolExecutor(max_workers=1)
        loop = asyncio.get_running_loop()
        try:
            info = await loop.run_in_executor(
                executor, _process_warmup, self._config(shard.name)
            )
        except Exception:  # noqa: BLE001 — a failed respawn leaves it dead
            executor.shutdown(wait=False)
            return
        if self._closing:
            executor.shutdown(wait=True)
            return
        shard.executor = executor
        shard.pid = info["pid"]
        shard.dead = False
        shard.respawns += 1
        self._rebuild_live_ring()
        if _telemetry.is_enabled():
            _telemetry.count(_counters.HTTP_RESPAWNED, shard=shard.name)

    async def check_health(
        self, *, timeout_seconds: float = 5.0
    ) -> dict[str, str]:
        """Probe every shard; eject the ones whose worker is gone.

        Returns a ``shard → verdict`` map: ``ok`` (answered), ``busy``
        (alive but did not answer within the timeout — slow is *not*
        dead, the shard stays in the ring), ``ejected`` (probe found the
        pool broken right now) or ``dead`` (already out, respawn
        pending).

        Parameters
        ----------
        timeout_seconds:
            How long a probe may wait before the shard is called busy.
        """
        loop = asyncio.get_running_loop()
        verdicts: dict[str, str] = {}
        for shard in self._shards.values():
            if shard.dead:
                verdicts[shard.name] = "dead"
                continue
            try:
                if self.mode == "process":
                    pid = await asyncio.wait_for(
                        loop.run_in_executor(shard.executor, _process_ping),
                        timeout_seconds,
                    )
                    shard.pid = pid
                else:
                    await asyncio.wait_for(
                        loop.run_in_executor(shard.executor, lambda: None),
                        timeout_seconds,
                    )
                verdicts[shard.name] = "ok"
            except BrokenProcessPool:
                self._eject(shard)
                verdicts[shard.name] = "ejected"
            except asyncio.TimeoutError:
                verdicts[shard.name] = "busy"
        return verdicts

    # ------------------------------------------------------------------ #
    async def describe(self) -> dict[str, Any]:
        """Pool topology + per-shard routing counters + frontend stats."""
        loop = asyncio.get_running_loop()
        shards: dict[str, Any] = {}
        for shard in self._shards.values():
            entry: dict[str, Any] = {
                "routed": shard.routed,
                "coalesced": shard.coalesced,
                "rejected": shard.rejected,
                "pending": shard.pending,
                "pid": shard.pid,
                "dead": shard.dead,
                "ejections": shard.ejections,
                "respawns": shard.respawns,
            }
            if shard.dead:
                entry["frontend"] = None
            elif shard.frontend is not None:
                entry["frontend"] = shard.frontend.describe()
            else:
                try:
                    entry["frontend"] = await loop.run_in_executor(
                        shard.executor,
                        _process_describe,
                        self._config(shard.name),
                    )
                except BrokenProcessPool:
                    # Stats discovered the death before a request did.
                    self._eject(shard)
                    entry["dead"] = True
                    entry["ejections"] = shard.ejections
                    entry["frontend"] = None
            shards[shard.name] = entry
        return {
            "mode": self.mode,
            "shards": len(self._shards),
            "live_shards": list(self.live_shard_names),
            "max_pending": self.max_pending,
            "cache_dir": self.cache_dir,
            "by_shard": shards,
        }

    def shutdown(self) -> None:
        """Release every shard executor (blocking until idle)."""
        self._closing = True
        for shard in self._shards.values():
            shard.executor.shutdown(wait=not shard.dead)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _config(self, shard: str) -> dict[str, Any]:
        """The picklable per-shard frontend recipe shipped to workers."""
        return {
            "shard": shard,
            "cache_dir": self.cache_dir,
            "default_budget_seconds": self.default_budget_seconds,
            "seed": self.seed,
            "memory_entries": self.memory_entries,
        }

    @staticmethod
    def _coalesce_key(request: ServiceRequest, fingerprint: str) -> str:
        """Identity of one computation: content + parameters.

        Matches the grouping :meth:`ServiceFrontend.submit_batch` uses —
        two requests coalesce only when their cached answer would too.
        """
        return (
            f"{fingerprint}|{request.algorithm}|{request.priority}"
            f"|{request.budget_seconds}"
        )

    @staticmethod
    def _follower_response(
        request: ServiceRequest, leader: dict[str, Any], waited: float
    ) -> ServiceResponse:
        """The follower's ServiceResponse derived from its leader's payload."""
        consensus = leader.get("consensus")
        score = leader.get("score")
        return ServiceResponse(
            request_id=request.request_id,
            consensus=None if consensus is None else Ranking(consensus),
            score=None if score is None else int(score),
            algorithm=str(leader.get("algorithm") or ""),
            source="coalesced",
            latency_seconds=waited,
            queue_seconds=waited,
            execution_seconds=0.0,
            status=str(leader.get("status") or "ok"),
            error=leader.get("error"),
        )

    def _account(self, shard: _Shard, response: ServiceResponse) -> None:
        """Record a follower response in the shard's registry (mode-aware)."""
        if shard.frontend is not None:
            shard.frontend.account(response)
        elif _telemetry.is_enabled():
            _telemetry.count(
                _counters.SERVICE_REQUESTS, source=response.source
            )
            _telemetry.observe(
                _counters.SERVICE_QUEUE_SECONDS,
                response.queue_seconds,
                source=response.source,
            )
            _telemetry.observe(
                _counters.SERVICE_EXECUTION_SECONDS,
                response.execution_seconds,
                source=response.source,
            )

    @staticmethod
    def _observe_payload(payload: dict[str, Any]) -> None:
        """Driver-side mirror of the shared instruments (process mode)."""
        if not _telemetry.is_enabled():
            return
        source = str(payload.get("source") or "computed")
        status = str(payload.get("status") or "ok")
        if status in ("overloaded", "deadline", "draining"):
            _telemetry.count(_counters.SERVICE_REJECTED, reason=status)
        _telemetry.count(_counters.SERVICE_REQUESTS, source=source)
        _telemetry.observe(
            _counters.SERVICE_QUEUE_SECONDS,
            float(payload.get("queue_seconds") or 0.0),
            source=source,
        )
        _telemetry.observe(
            _counters.SERVICE_EXECUTION_SECONDS,
            float(payload.get("execution_seconds") or 0.0),
            source=source,
        )

    def __repr__(self) -> str:
        return (
            f"ShardPool(shards={len(self._shards)}, mode={self.mode!r}, "
            f"max_pending={self.max_pending})"
        )
