"""Async HTTP serving layer: sharded workers behind one socket.

The network face of the serving stack.  Everything below is **stdlib
asyncio only** — no web framework — so the deployable surface carries the
same zero-dependency contract as the rest of the library:

* :mod:`repro.service.http.hashring` — :class:`ConsistentHashRing` maps
  dataset content fingerprints to shard workers; growing the pool remaps
  only ~1/k of the keyspace, so warm per-shard memory tiers survive a
  resize.
* :mod:`repro.service.http.worker` — :class:`ShardPool`: one
  single-worker executor per shard (thread or process), each shard
  owning its own :class:`~repro.engine.TieredResultCache` memory tier
  over a shared disk tier, with bounded admission, cross-connection
  coalescing and per-request deadlines.
* :mod:`repro.service.http.server` — :class:`HttpAggregationServer`:
  HTTP/1.1 over ``asyncio.start_server`` (TCP or unix socket), the
  ``/aggregate`` read path, ``/live/*`` mutation/repair endpoints
  delegating to :class:`~repro.service.live.LiveAggregationSession`,
  ``/healthz`` + ``/stats`` introspection and graceful drain.
* :mod:`repro.service.http.client` — :class:`AsyncHttpClient`, the
  minimal keep-alive client used by the load generator, the test suite
  and the CLI smoke path.
* :mod:`repro.service.http.protocol` — the JSON wire vocabulary shared
  by all of the above (request/response payloads, the PR 7 degradation
  statuses mapped onto HTTP status codes, result fingerprints).

Quickstart
----------

>>> import asyncio
>>> from repro.generators import uniform_dataset
>>> from repro.service.http import AsyncHttpClient, HttpAggregationServer
>>> async def demo():
...     server = HttpAggregationServer(cache_dir=".repro-cache", shards=2)
...     await server.start()
...     client = AsyncHttpClient(host=server.host, port=server.port)
...     status, payload = await client.aggregate(uniform_dataset(5, 12, seed=3))
...     await client.close()
...     await server.drain()
...     return status, payload["source"]
>>> asyncio.run(demo())                                    # doctest: +SKIP
(200, 'computed')
"""

from .client import AsyncHttpClient, HttpResponseError
from .hashring import ConsistentHashRing
from .protocol import (
    AggregateRequestError,
    decode_aggregate_request,
    encode_aggregate_request,
    response_payload,
    result_fingerprint,
    status_code_for,
)
from .server import HttpAggregationServer, HttpServerStats
from .worker import ShardPool, ShardRejection

__all__ = [
    "AsyncHttpClient",
    "HttpResponseError",
    "ConsistentHashRing",
    "AggregateRequestError",
    "decode_aggregate_request",
    "encode_aggregate_request",
    "response_payload",
    "result_fingerprint",
    "status_code_for",
    "HttpAggregationServer",
    "HttpServerStats",
    "ShardPool",
    "ShardRejection",
]
