"""ServiceFrontend: batch, coalesce and cache aggregation requests.

The request-facing layer in front of the engine and the portfolio
scheduler.  A :class:`ServiceFrontend` accepts :class:`ServiceRequest`
objects (a dataset plus a priority / budget / optional pinned algorithm)
and answers with :class:`ServiceResponse` objects, applying three
serving-side optimisations:

* **result caching** — responses are stored under the same
  content-addressed keys the engine uses
  (:func:`repro.engine.fingerprint.run_key`, ``kind="service"``), in a
  two-tier cache: an in-memory LRU in front of the persistent disk store
  (:class:`repro.engine.TieredResultCache`) — a warm process answers
  repeated requests without touching the disk;
* **request coalescing** — a batch submitted through
  :meth:`ServiceFrontend.submit_batch` computes each distinct
  (dataset fingerprint, parameters) group once; identical concurrent
  requests share the one computation;
* **per-request accounting** — every response records its latency and
  source (``computed`` / ``memory`` / ``disk`` / ``coalesced``), and
  :meth:`ServiceFrontend.stats` aggregates hit rates and latency
  percentiles for the whole session;
* **graceful degradation** — bounded admission (``max_queue``) answers
  excess requests with structured ``overloaded`` rejections, per-request
  deadlines (:attr:`ServiceRequest.deadline_seconds`) reject work whose
  answer can no longer be useful, and a failed computation becomes a
  structured ``failed`` response — propagated to its coalesced followers
  — instead of an exception tearing the batch down.  Rejections tick the
  ``service.rejected`` telemetry counter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..algorithms.anytime import run_anytime, supports_anytime
from ..algorithms.registry import make_algorithm
from ..core.ranking import Ranking
from ..datasets.dataset import Dataset
from ..datasets.normalization import ensure_complete
from ..engine.cache import ResultCache
from ..engine.fingerprint import dataset_fingerprint, run_key
from ..engine.tiering import TieredResultCache
from ..evaluation.guidance import Priority
from ..telemetry import runtime as _telemetry
from . import counters as _counters
from .portfolio import PortfolioScheduler

__all__ = ["ServiceRequest", "ServiceResponse", "ServiceStats", "ServiceFrontend"]


@dataclass(frozen=True)
class ServiceRequest:
    """One aggregation request.

    Attributes
    ----------
    dataset:
        The dataset to aggregate (normalized by unification when not
        complete).
    priority:
        Guidance priority driving portfolio candidate selection.
    budget_seconds:
        Per-request time budget; ``None`` uses the frontend default.
    algorithm:
        Pin one registry algorithm instead of racing a portfolio.
    request_id:
        Caller-side correlation id, echoed on the response.
    deadline_seconds:
        Per-request deadline on total latency: a request whose queue wait
        already exceeds it is answered with a structured ``deadline``
        rejection instead of starting a computation that can no longer be
        useful.  ``None`` waits indefinitely.
    """

    dataset: Dataset
    priority: str = Priority.BALANCED.value
    budget_seconds: float | None = None
    algorithm: str | None = None
    request_id: str | None = None
    deadline_seconds: float | None = None


@dataclass(frozen=True)
class ServiceResponse:
    """Answer to one :class:`ServiceRequest`.

    Attributes
    ----------
    request_id:
        Echo of the request's correlation id.
    consensus:
        The consensus ranking (``None`` on a degraded response).
    score:
        Its generalized Kemeny score (``None`` on a degraded response).
    algorithm:
        Name of the algorithm that produced it (empty when nothing ran).
    source:
        ``"computed"`` (executed now), ``"memory"`` / ``"disk"`` (cache
        tier that served it), ``"coalesced"`` (shared another identical
        request's computation in the same batch), ``"rejected"`` (refused
        before executing anything) or ``"error"`` (the computation
        failed).
    latency_seconds:
        Wall-clock time between submission and answer — always the sum of
        the queue and execution shares below.
    queue_seconds:
        Time the request waited before its own lookup/compute started: for
        batch submissions, the time spent behind earlier groups of the
        batch (and, for coalesced followers, behind their leader's
        computation); zero for direct :meth:`ServiceFrontend.submit`.
    execution_seconds:
        Time spent answering *this* request — cache lookup plus (for
        computed requests) the aggregation itself; zero for coalesced
        followers, which execute nothing.
    status:
        ``"ok"`` for an answered request; ``"overloaded"`` (bounded
        admission refused it), ``"deadline"`` (its per-request deadline
        expired before execution started), ``"draining"`` (the serving
        process is shutting down gracefully and stopped admitting work)
        or ``"failed"`` (the computation raised) for graceful
        degradation.
    error:
        Failure detail for non-``ok`` responses, ``None`` otherwise.
        Coalesced followers of a failed leader carry the leader's error.
    """

    request_id: str | None
    consensus: Ranking | None
    score: int | None
    algorithm: str
    source: str
    latency_seconds: float
    queue_seconds: float = 0.0
    execution_seconds: float = 0.0
    status: str = "ok"
    error: str | None = None

    @property
    def succeeded(self) -> bool:
        """Whether the request was answered with a consensus."""
        return self.status == "ok"

    @property
    def cache_hit(self) -> bool:
        """Whether the response was served from a cache tier."""
        return self.source in ("memory", "disk")


@dataclass
class ServiceStats:
    """Session accounting of a :class:`ServiceFrontend`.

    Attributes
    ----------
    requests:
        Total requests answered.
    computed:
        Requests that executed a fresh aggregation.
    memory_hits, disk_hits:
        Requests served by the memory / disk cache tier.
    coalesced:
        Requests that shared another identical request's computation.
    rejected:
        Requests refused by bounded admission (``overloaded``).
    deadline_misses:
        Requests whose per-request deadline expired before execution.
    failed:
        Requests whose computation raised (structured ``failed``
        responses, including coalesced followers of a failed leader).
    latencies:
        Per-request latency sample, in seconds (queue + execution).
    queue_waits:
        Per-request queue-wait sample, in seconds.
    execution_times:
        Per-request execution sample, in seconds.
    """

    requests: int = 0
    computed: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    coalesced: int = 0
    rejected: int = 0
    deadline_misses: int = 0
    failed: int = 0
    latencies: list[float] = field(default_factory=list)
    queue_waits: list[float] = field(default_factory=list)
    execution_times: list[float] = field(default_factory=list)

    @property
    def cache_hits(self) -> int:
        """Requests served from either cache tier."""
        return self.memory_hits + self.disk_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of requests answered without a fresh computation."""
        if not self.requests:
            return 0.0
        return (self.cache_hits + self.coalesced) / self.requests

    def record(self, response: ServiceResponse) -> None:
        """Account one response.

        Parameters
        ----------
        response:
            The response to fold into the session counters.
        """
        self.requests += 1
        self.latencies.append(response.latency_seconds)
        self.queue_waits.append(response.queue_seconds)
        self.execution_times.append(response.execution_seconds)
        if response.status in ("overloaded", "draining"):
            self.rejected += 1
        elif response.status == "deadline":
            self.deadline_misses += 1
        elif response.status == "failed":
            self.failed += 1
        elif response.source == "memory":
            self.memory_hits += 1
        elif response.source == "disk":
            self.disk_hits += 1
        elif response.source == "coalesced":
            self.coalesced += 1
        else:
            self.computed += 1

    def latency_percentile(self, fraction: float) -> float:
        """Latency at the given fraction (0..1) of the sorted sample."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    def describe(self) -> dict[str, Any]:
        """Flat dictionary form (CLI tables, benchmark payloads)."""

        def _mean(sample: list[float]) -> float:
            return sum(sample) / len(sample) if sample else 0.0

        return {
            "requests": self.requests,
            "computed": self.computed,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "deadline_misses": self.deadline_misses,
            "failed": self.failed,
            "hit_rate": round(self.hit_rate, 4),
            "latency_mean_seconds": _mean(self.latencies),
            "latency_p50_seconds": self.latency_percentile(0.50),
            "latency_p95_seconds": self.latency_percentile(0.95),
            "latency_max_seconds": max(self.latencies, default=0.0),
            "queue_mean_seconds": _mean(self.queue_waits),
            "queue_max_seconds": max(self.queue_waits, default=0.0),
            "execution_mean_seconds": _mean(self.execution_times),
            "execution_max_seconds": max(self.execution_times, default=0.0),
        }


class ServiceFrontend:
    """Request-facing aggregation service over the portfolio scheduler.

    Parameters
    ----------
    cache:
        Result cache: a :class:`~repro.engine.TieredResultCache`, a plain
        :class:`~repro.engine.ResultCache` (disk only), a directory path
        (a tiered cache is created over it) or ``None`` to disable
        caching.
    default_budget_seconds:
        Budget applied to requests that do not carry one.
    seed:
        Seed forwarded to randomized algorithms (part of the cache key).
    memory_entries:
        LRU capacity when a tiered cache is created from a path.
    max_queue:
        Bounded admission: the most requests one :meth:`submit_batch`
        call accepts.  Requests beyond it are answered immediately with a
        structured ``overloaded`` rejection instead of queueing
        unboundedly behind the batch.  ``None`` (default) admits
        everything.
    """

    def __init__(
        self,
        cache: TieredResultCache | ResultCache | str | Path | None = None,
        *,
        default_budget_seconds: float | None = 1.0,
        seed: int | None = None,
        memory_entries: int = 1024,
        max_queue: int | None = None,
    ):
        if isinstance(cache, (str, Path)):
            cache = TieredResultCache(cache, memory_entries=memory_entries)
        if max_queue is not None and max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.cache = cache
        self.default_budget_seconds = default_budget_seconds
        self.seed = seed
        self.max_queue = max_queue
        self._stats = ServiceStats()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self, request: ServiceRequest, *, queue_seconds: float = 0.0
    ) -> ServiceResponse:
        """Answer one request (cache lookup, then compute + store).

        A direct submission never queues on its own: by default its
        ``queue_seconds`` is zero and its latency is pure execution time.
        A caller that *did* queue the request elsewhere first (the HTTP
        shard dispatch of :mod:`repro.service.http`) passes the wait it
        already accumulated so the response's latency split stays honest.

        Parameters
        ----------
        request:
            The request to answer.
        queue_seconds:
            Wait the request accumulated before this call (folded into
            the response's ``queue_seconds`` and total latency).
        """
        dataset, key, fingerprint = self._prepare(request)
        response = self._answer(
            request, dataset, key, fingerprint, queue_seconds=queue_seconds
        )
        self._stats.record(response)
        return response

    def reject(
        self,
        request: ServiceRequest,
        *,
        status: str,
        error: str,
        queue_seconds: float = 0.0,
    ) -> ServiceResponse:
        """Refuse one request with a structured degraded response.

        The one rejection path shared by every serving surface: the HTTP
        shard dispatch calls it for bounded-admission (``overloaded``),
        expired-deadline (``deadline``) and drain-window (``draining``)
        refusals, so socket-path rejections land in the *same* session
        registry (:meth:`stats` / :meth:`describe`) and tick the same
        telemetry counters as in-process ones.

        Parameters
        ----------
        request:
            The request being refused.
        status:
            Degradation status (``overloaded`` / ``deadline`` /
            ``draining``).
        error:
            Human-readable refusal detail carried on the response.
        queue_seconds:
            Wait the request accumulated before being refused.
        """
        response = self._degraded_response(
            request, status=status, error=error, queue_seconds=queue_seconds
        )
        self._stats.record(response)
        return response

    def account(self, response: ServiceResponse) -> None:
        """Fold an externally produced response into the session registry.

        The socket path answers coalesced followers without re-entering
        :meth:`submit` (they share their leader's computation); it calls
        this so those responses still count in :meth:`stats` /
        :meth:`describe` and on the shared latency histograms, keeping
        in-process and socket-path accounting identical.

        Parameters
        ----------
        response:
            The response to record (not re-answered, only accounted).
        """
        self._stats.record(response)
        self._observe_response(response)

    def submit_batch(self, requests: list[ServiceRequest]) -> list[ServiceResponse]:
        """Answer a batch, coalescing identical requests.

        Requests sharing a cache key (same dataset fingerprint, same
        parameters) *and* the same dataset generation are computed once;
        the first request of each group is accounted normally and the
        others as ``coalesced``.  Responses come back in submission order.
        The generation (the ``generation`` metadata entry
        :class:`~repro.core.live.LiveDataset` snapshots carry; ``None``
        for ordinary datasets) keeps two snapshots that collide on content
        fingerprint but straddle a mutation from sharing one computation.

        Every response separates queue wait from execution: a group
        leader's ``queue_seconds`` is the time it spent behind earlier
        groups of the batch, a coalesced follower's is the time until its
        leader's answer was ready (its ``execution_seconds`` is zero — it
        executed nothing).

        Graceful degradation: with ``max_queue`` set, requests beyond the
        admission bound are answered with structured ``overloaded``
        rejections before anything executes; a request whose
        ``deadline_seconds`` expired while it queued gets a ``deadline``
        rejection (the next live request of its group is promoted to
        leader); and a leader whose computation fails propagates its
        structured error to every coalesced follower instead of raising.

        Parameters
        ----------
        requests:
            The batch, answered in submission order.
        """
        batch_start = time.perf_counter()
        responses: dict[int, ServiceResponse] = {}
        admitted = requests
        if self.max_queue is not None and len(requests) > self.max_queue:
            admitted = requests[: self.max_queue]
            for index in range(self.max_queue, len(requests)):
                rejection = self._degraded_response(
                    requests[index],
                    status="overloaded",
                    error=(
                        f"admission queue full "
                        f"({self.max_queue} of {len(requests)} requests admitted)"
                    ),
                    queue_seconds=0.0,
                )
                responses[index] = rejection
                self._stats.record(rejection)

        groups: dict[tuple[str, Any], list[int]] = {}
        prepared: list[tuple[ServiceRequest, Dataset, str, str]] = []
        for index, request in enumerate(admitted):
            dataset, key, fingerprint = self._prepare(request)
            prepared.append((request, dataset, key, fingerprint))
            # Coalesce on (cache key, dataset generation): snapshots of a
            # LiveDataset carry their mutation generation in metadata, so a
            # pre-mutation request never shares a post-mutation computation.
            groups.setdefault((key, dataset.metadata.get("generation")), []).append(
                index
            )

        for (key, _generation), indices in groups.items():
            queue_wait = time.perf_counter() - batch_start
            leader: ServiceResponse | None = None
            leader_position = 0
            for position, index in enumerate(indices):
                request, dataset, _, fingerprint = prepared[index]
                deadline = request.deadline_seconds
                if deadline is not None and queue_wait >= deadline:
                    rejection = self._degraded_response(
                        request,
                        status="deadline",
                        error=(
                            f"deadline {deadline}s expired after "
                            f"{queue_wait:.3f}s in queue"
                        ),
                        queue_seconds=queue_wait,
                    )
                    responses[index] = rejection
                    self._stats.record(rejection)
                    continue
                leader = self._answer(
                    request, dataset, key, fingerprint, queue_seconds=queue_wait
                )
                leader_position = position
                responses[index] = leader
                self._stats.record(leader)
                break
            if leader is None:
                continue  # every request of the group missed its deadline
            follower_wait = time.perf_counter() - batch_start
            for follower_index in indices[leader_position + 1 :]:
                follower_request = prepared[follower_index][0]
                follower = ServiceResponse(
                    request_id=follower_request.request_id,
                    consensus=leader.consensus,
                    score=leader.score,
                    algorithm=leader.algorithm,
                    source="coalesced",
                    latency_seconds=follower_wait,
                    queue_seconds=follower_wait,
                    execution_seconds=0.0,
                    status=leader.status,
                    error=leader.error,
                )
                responses[follower_index] = follower
                self._stats.record(follower)
                self._observe_response(follower)
        return [responses[index] for index in range(len(requests))]

    def _degraded_response(
        self,
        request: ServiceRequest,
        *,
        status: str,
        error: str,
        queue_seconds: float,
    ) -> ServiceResponse:
        """Structured rejection (nothing executed), ticking ``service.rejected``."""
        response = ServiceResponse(
            request_id=request.request_id,
            consensus=None,
            score=None,
            algorithm="",
            source="rejected",
            latency_seconds=queue_seconds,
            queue_seconds=queue_seconds,
            execution_seconds=0.0,
            status=status,
            error=error,
        )
        if _telemetry.is_enabled():
            _telemetry.count(_counters.SERVICE_REJECTED, reason=status)
        self._observe_response(response)
        return response

    # ------------------------------------------------------------------ #
    # Invalidation
    # ------------------------------------------------------------------ #
    def invalidate_dataset(self, fingerprint: str) -> int:
        """Drop every cached response computed for one dataset content.

        Called on the write path of live serving
        (:class:`~repro.service.live.LiveAggregationSession`): after a
        mutation, responses cached under the pre-mutation fingerprint
        describe content that no longer exists and must not be re-served
        should the content ever reappear under a new generation.  Ticks
        the ``service.invalidated`` telemetry counter with the number of
        records dropped.

        Parameters
        ----------
        fingerprint:
            Content fingerprint of the dataset whose responses to purge
            (``Dataset.content_fingerprint()`` /
            ``LiveDataset.content_fingerprint()``).

        Returns
        -------
        int
            Number of persistent records removed.
        """
        if self.cache is None:
            return 0
        removed = int(self.cache.invalidate(dataset_fingerprint=fingerprint))
        if _telemetry.is_enabled():
            _telemetry.count(_counters.SERVICE_INVALIDATED, removed)
        return removed

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    def stats(self) -> ServiceStats:
        """Session accounting (requests, hit rates, latencies)."""
        return self._stats

    def describe(self) -> dict[str, Any]:
        """Session accounting plus the cache tiers' own statistics."""
        payload = self._stats.describe()
        if self.cache is not None and hasattr(self.cache, "stats"):
            cache_stats = self.cache.stats()
            payload["cache"] = (
                cache_stats.describe()
                if hasattr(cache_stats, "describe")
                else repr(cache_stats)
            )
        return payload

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _prepare(self, request: ServiceRequest) -> tuple[Dataset, str, str]:
        """Normalize the request's dataset; compute its cache key and
        content fingerprint."""
        dataset = ensure_complete(request.dataset, None)
        budget = (
            self.default_budget_seconds
            if request.budget_seconds is None
            else request.budget_seconds
        )
        name = request.algorithm or f"portfolio[{Priority(request.priority).value}]"
        fingerprint = dataset_fingerprint(dataset)
        key = run_key(
            dataset_fingerprint=fingerprint,
            algorithm_name=name,
            parameters={
                "priority": Priority(request.priority).value,
                "budget_seconds": budget,
                "seed": self.seed,
            },
            kind="service",
            time_limit=budget,
        )
        return dataset, key, fingerprint

    def _answer(
        self,
        request: ServiceRequest,
        dataset: Dataset,
        key: str,
        fingerprint: str,
        *,
        queue_seconds: float = 0.0,
    ) -> ServiceResponse:
        """The one lookup/compute/store path behind submit and submit_batch.

        ``queue_seconds`` is how long the request already waited before
        this call; the time spent *inside* it becomes the response's
        ``execution_seconds`` and the reported latency is their sum.
        """
        with _telemetry.span("service.request", dataset=dataset.name) as request_span:
            start = time.perf_counter()
            record, source = self._cache_lookup(key)
            if record is not None:
                response = self._response_from_record(
                    request,
                    record,
                    source,
                    queue_seconds,
                    time.perf_counter() - start,
                )
            else:
                try:
                    consensus, score, algorithm = self._compute(request, dataset)
                except Exception as error:  # noqa: BLE001 — degrade, don't abort
                    execution = time.perf_counter() - start
                    if _telemetry.is_enabled():
                        _telemetry.count(
                            _counters.SERVICE_FAILED, kind=type(error).__name__
                        )
                    response = ServiceResponse(
                        request_id=request.request_id,
                        consensus=None,
                        score=None,
                        algorithm="",
                        source="error",
                        latency_seconds=queue_seconds + execution,
                        queue_seconds=queue_seconds,
                        execution_seconds=execution,
                        status="failed",
                        error=f"{type(error).__name__}: {error}",
                    )
                else:
                    self._cache_store(key, consensus, score, algorithm, fingerprint)
                    execution = time.perf_counter() - start
                    response = ServiceResponse(
                        request_id=request.request_id,
                        consensus=consensus,
                        score=score,
                        algorithm=algorithm,
                        source="computed",
                        latency_seconds=queue_seconds + execution,
                        queue_seconds=queue_seconds,
                        execution_seconds=execution,
                    )
            if _telemetry.is_enabled():
                request_span.set(source=response.source, algorithm=response.algorithm)
            self._observe_response(response)
        return response

    @staticmethod
    def _observe_response(response: ServiceResponse) -> None:
        """Record one response's queue/execution split on the histograms."""
        if not _telemetry.is_enabled():
            return
        _telemetry.count(_counters.SERVICE_REQUESTS, source=response.source)
        _telemetry.observe(
            _counters.SERVICE_QUEUE_SECONDS,
            response.queue_seconds,
            source=response.source,
        )
        _telemetry.observe(
            _counters.SERVICE_EXECUTION_SECONDS,
            response.execution_seconds,
            source=response.source,
        )

    def _cache_lookup(self, key: str) -> tuple[dict[str, Any] | None, str]:
        """Look ``key`` up, reporting which tier served it."""
        if self.cache is None:
            return None, "none"
        if isinstance(self.cache, TieredResultCache):
            return self.cache.lookup_with_source(key)
        record = self.cache.lookup(key)
        return record, "disk" if record is not None else "none"

    def _cache_store(
        self,
        key: str,
        consensus: Ranking,
        score: int,
        algorithm: str,
        fingerprint: str,
    ) -> None:
        if self.cache is None:
            return
        # Buckets are stored as typed JSON lists — a text round-trip through
        # the dataset format would coerce numeric-looking string elements
        # (e.g. '01' -> 1) and is not parse-stable for every str().  The
        # dataset fingerprint makes the record addressable by
        # invalidate(dataset_fingerprint=...) — the write path of live
        # serving purges stale consensuses through it.
        self.cache.store(
            key,
            {
                "kind": "service",
                "consensus_buckets": [list(bucket) for bucket in consensus.buckets],
                "score": int(score),
                "algorithm": algorithm,
                "dataset_fingerprint": fingerprint,
            },
        )

    @staticmethod
    def _response_from_record(
        request: ServiceRequest,
        record: dict[str, Any],
        source: str,
        queue_seconds: float,
        execution_seconds: float,
    ) -> ServiceResponse:
        return ServiceResponse(
            request_id=request.request_id,
            consensus=Ranking(record["consensus_buckets"]),
            score=int(record["score"]),
            algorithm=str(record["algorithm"]),
            source=source,
            latency_seconds=queue_seconds + execution_seconds,
            queue_seconds=queue_seconds,
            execution_seconds=execution_seconds,
        )

    def _compute(
        self, request: ServiceRequest, dataset: Dataset
    ) -> tuple[Ranking, int, str]:
        """Execute one request: pinned algorithm or portfolio race.

        Either path runs off the dataset's memoized preparation plan
        (:meth:`~repro.datasets.Dataset.prepared`): the pinned-algorithm
        branch through ``aggregate`` / the anytime protocol, the portfolio
        branch through the scheduler's shared plan — one O(m·n²) build per
        computed request, however many candidates end up racing.
        """
        budget = (
            self.default_budget_seconds
            if request.budget_seconds is None
            else request.budget_seconds
        )
        if request.algorithm is not None:
            algorithm = make_algorithm(request.algorithm, seed=self.seed)
            if supports_anytime(algorithm) and budget is not None:
                result = run_anytime(algorithm, dataset, budget)
            else:
                result = algorithm.aggregate(dataset)
            return result.consensus, int(result.score), request.algorithm
        scheduler = PortfolioScheduler(
            budget_seconds=budget,
            priority=request.priority,
            seed=self.seed,
        )
        outcome = scheduler.run(dataset)
        return outcome.consensus, outcome.score, outcome.algorithm

    def __repr__(self) -> str:
        return (
            f"ServiceFrontend(cache={self.cache!r}, "
            f"default_budget_seconds={self.default_budget_seconds}, "
            f"requests={self._stats.requests})"
        )
