"""Experiment runner: run algorithm suites over dataset collections.

This is the harness behind every table and figure of the evaluation: it runs
a suite of algorithms over a collection of datasets, records the score and
wall-clock time of every run, computes optimal scores with an exact
algorithm when feasible (falling back to m-gaps otherwise, Section 6.2.3),
and aggregates the per-dataset gaps into the summary statistics reported by
the paper (average gap, rank, %optimal, %first).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..algorithms.base import RankAggregator
from ..datasets.dataset import Dataset
from .gap import (
    average_gap,
    fraction_first,
    fraction_optimal,
    gaps_for_scores,
    rank_algorithms,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import ExecutionEngine

__all__ = ["AlgorithmRun", "EvaluationReport", "evaluate_algorithms"]


@dataclass(frozen=True)
class AlgorithmRun:
    """One (algorithm, dataset) execution record.

    ``cached`` marks records served from the engine's persistent result
    cache instead of an actual execution (see :mod:`repro.engine`).
    """

    algorithm: str
    dataset: str
    score: int | None
    elapsed_seconds: float
    within_budget: bool
    error: str | None = None
    cached: bool = False

    @property
    def succeeded(self) -> bool:
        return self.score is not None and self.within_budget and self.error is None


@dataclass
class EvaluationReport:
    """Collected runs plus the per-dataset optimal scores (when available)."""

    runs: list[AlgorithmRun] = field(default_factory=list)
    optimal_scores: dict[str, int] = field(default_factory=dict)
    dataset_features: dict[str, dict] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Raw access
    # ------------------------------------------------------------------ #
    def algorithms(self) -> list[str]:
        return sorted({run.algorithm for run in self.runs})

    def datasets(self) -> list[str]:
        seen: dict[str, None] = {}
        for run in self.runs:
            seen.setdefault(run.dataset, None)
        return list(seen)

    def scores_by_dataset(self) -> dict[str, dict[str, int]]:
        """dataset -> {algorithm -> score} for the successful runs."""
        table: dict[str, dict[str, int]] = {}
        for run in self.runs:
            if run.succeeded:
                table.setdefault(run.dataset, {})[run.algorithm] = int(run.score)
        return table

    def times_by_algorithm(self) -> dict[str, list[float]]:
        """algorithm -> list of elapsed times over the successful runs."""
        table: dict[str, list[float]] = {}
        for run in self.runs:
            if run.succeeded:
                table.setdefault(run.algorithm, []).append(run.elapsed_seconds)
        return table

    # ------------------------------------------------------------------ #
    # Gap statistics (Table 4 / Table 5 columns)
    # ------------------------------------------------------------------ #
    def gaps_by_dataset(self) -> dict[str, dict[str, float]]:
        """dataset -> {algorithm -> gap}; m-gap when no optimal score is known."""
        gaps: dict[str, dict[str, float]] = {}
        for dataset, scores in self.scores_by_dataset().items():
            optimal = self.optimal_scores.get(dataset)
            gaps[dataset] = gaps_for_scores(scores, optimal)
        return gaps

    def average_gaps(self) -> dict[str, float]:
        """Average gap per algorithm over the datasets it solved."""
        per_algorithm: dict[str, list[float]] = {}
        for gaps in self.gaps_by_dataset().values():
            for algorithm, value in gaps.items():
                per_algorithm.setdefault(algorithm, []).append(value)
        return {
            algorithm: average_gap(values) for algorithm, values in per_algorithm.items()
        }

    def algorithm_ranks(self) -> dict[str, int]:
        """Rank of each algorithm by average gap (1 = best)."""
        return rank_algorithms(self.average_gaps())

    def fraction_optimal(self) -> dict[str, float]:
        """Per-algorithm fraction of datasets where the gap is zero."""
        per_algorithm: dict[str, list[float]] = {}
        for gaps in self.gaps_by_dataset().values():
            for algorithm, value in gaps.items():
                per_algorithm.setdefault(algorithm, []).append(value)
        return {
            algorithm: fraction_optimal(values)
            for algorithm, values in per_algorithm.items()
        }

    def fraction_first(self) -> dict[str, float]:
        """Per-algorithm fraction of datasets where it achieves the best score."""
        score_tables = list(self.scores_by_dataset().values())
        return {
            algorithm: fraction_first(score_tables, algorithm)
            for algorithm in self.algorithms()
        }

    def average_times(self) -> dict[str, float]:
        """Average elapsed seconds per algorithm."""
        return {
            algorithm: sum(times) / len(times)
            for algorithm, times in self.times_by_algorithm().items()
            if times
        }

    def summary_rows(self) -> list[dict[str, object]]:
        """One summary row per algorithm: the columns of Table 4 / Table 5."""
        averages = self.average_gaps()
        ranks = self.algorithm_ranks()
        optimal = self.fraction_optimal()
        first = self.fraction_first()
        times = self.average_times()
        rows = []
        for algorithm in sorted(averages):
            rows.append(
                {
                    "algorithm": algorithm,
                    "average_gap": averages[algorithm],
                    "rank": ranks[algorithm],
                    "fraction_optimal": optimal.get(algorithm, float("nan")),
                    "fraction_first": first.get(algorithm, float("nan")),
                    "average_seconds": times.get(algorithm, float("nan")),
                }
            )
        return rows

    def merge(self, other: "EvaluationReport") -> "EvaluationReport":
        """Concatenate two reports (used to combine per-group experiments)."""
        return EvaluationReport(
            runs=self.runs + other.runs,
            optimal_scores={**self.optimal_scores, **other.optimal_scores},
            dataset_features={**self.dataset_features, **other.dataset_features},
        )


def evaluate_algorithms(
    datasets: Iterable[Dataset],
    algorithms: Mapping[str, RankAggregator] | Sequence[RankAggregator],
    *,
    exact_algorithm: RankAggregator | None = None,
    exact_max_elements: int | None = None,
    time_limit: float | None = None,
    record_features: bool = True,
    engine: "ExecutionEngine | None" = None,
) -> EvaluationReport:
    """Run every algorithm on every dataset and collect an evaluation report.

    The work is routed through the batch execution engine
    (:mod:`repro.engine`): the default is a serial, uncached engine, which
    reproduces the historical single-process behaviour exactly; pass an
    engine configured with a parallel backend and/or a persistent result
    cache to fan the independent runs out and to make re-runs incremental.

    Parameters
    ----------
    datasets:
        Complete datasets to aggregate.
    algorithms:
        The algorithm suite, either ``{name: instance}`` or a plain sequence
        (names are taken from the instances).
    exact_algorithm:
        Optional exact solver used to compute the per-dataset optimal score
        (the gap reference).  Without it, gaps degrade to m-gaps.
    exact_max_elements:
        Skip the exact solver on datasets with more elements than this
        (mirrors the paper's "optimal consensus computable up to n = 60").
    time_limit:
        Per-run wall-clock cap in seconds; runs exceeding it are recorded as
        failures (the paper uses two hours).
    record_features:
        Store ``Dataset.describe()`` for every dataset in the report, which
        the figure drivers use (similarity, size, normalization, ...).
    engine:
        Execution engine to run the batch on; ``None`` means serial and
        uncached.
    """
    # Imported lazily: repro.engine builds on the report types above.
    from ..engine import BatchJob, ExecutionEngine

    job = BatchJob.from_algorithms(
        datasets,
        algorithms,
        exact_algorithm=exact_algorithm,
        exact_max_elements=exact_max_elements,
        time_limit=time_limit,
        record_features=record_features,
    )
    if engine is None:
        engine = ExecutionEngine()
    return engine.run(job)
