"""Evaluation methodology: gap metrics, experiment runner, timing, guidance."""

from .gap import (
    average_gap,
    fraction_first,
    fraction_optimal,
    gap,
    gaps_for_scores,
    m_gap,
    rank_algorithms,
)
from .guidance import (
    DatasetProfile,
    Priority,
    Recommendation,
    profile_dataset,
    recommend,
)
from .runner import AlgorithmRun, EvaluationReport, evaluate_algorithms
from .timing import TimeBudget, TimingResult, measure_time, run_with_budget

__all__ = [
    "gap",
    "m_gap",
    "gaps_for_scores",
    "average_gap",
    "fraction_optimal",
    "fraction_first",
    "rank_algorithms",
    "AlgorithmRun",
    "EvaluationReport",
    "evaluate_algorithms",
    "TimingResult",
    "measure_time",
    "TimeBudget",
    "run_with_budget",
    "Priority",
    "DatasetProfile",
    "Recommendation",
    "profile_dataset",
    "recommend",
]
