"""Timing harness (Section 6.2.4).

The paper measures execution time by running each algorithm repeatedly
until the total elapsed time exceeds two seconds and dividing by the number
of runs, after a warm-up run.  :func:`measure_time` implements that
protocol with configurable thresholds; :class:`TimeBudget` implements the
per-run cap (two hours in the paper): algorithms exceeding the budget are
reported as "no result", which the experiment runner turns into a missing
entry exactly like the dashes of Table 4 / Figure 2.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

from ..core.exceptions import TimeBudgetExceeded

__all__ = ["TimingResult", "measure_time", "TimeBudget", "run_with_budget"]


@dataclass(frozen=True)
class TimingResult:
    """Outcome of a repeated-timing measurement."""

    seconds_per_run: float
    runs: int
    total_seconds: float


def measure_time(
    function: Callable[[], object],
    *,
    min_total_seconds: float = 0.2,
    max_runs: int = 1000,
    warmup: bool = True,
) -> TimingResult:
    """Measure the average wall-clock time of ``function``.

    The function is called repeatedly until the cumulative elapsed time
    exceeds ``min_total_seconds`` (the paper uses two seconds; the default
    here is smaller to keep the benchmark suite fast — pass 2.0 to follow
    the paper exactly), then the average per-run time is reported.

    Parameters
    ----------
    function:
        Zero-argument callable to time.
    min_total_seconds:
        Keep repeating until this much time has elapsed.
    max_runs:
        Hard cap on the number of runs (protects against pathologically fast
        functions).
    warmup:
        Run the function once, untimed, before measuring.
    """
    if warmup:
        function()
    runs = 0
    start = time.perf_counter()
    elapsed = 0.0
    while elapsed < min_total_seconds and runs < max_runs:
        function()
        runs += 1
        elapsed = time.perf_counter() - start
    if runs == 0:
        runs = 1
        function()
        elapsed = time.perf_counter() - start
    return TimingResult(seconds_per_run=elapsed / runs, runs=runs, total_seconds=elapsed)


@dataclass
class TimeBudget:
    """A wall-clock budget shared by cooperative long-running computations.

    Mirrors the paper's two-hour cap per algorithm run.  The budget is
    checked explicitly (``check()``) by the experiment runner around whole
    algorithm runs; it is intentionally not a hard interrupt.
    """

    limit_seconds: float
    _start: float | None = None

    def start(self) -> "TimeBudget":
        self._start = time.perf_counter()
        return self

    @property
    def elapsed(self) -> float:
        if self._start is None:
            return 0.0
        return time.perf_counter() - self._start

    @property
    def exhausted(self) -> bool:
        return self.elapsed > self.limit_seconds

    def check(self) -> None:
        """Raise :class:`TimeBudgetExceeded` when the budget is exhausted."""
        if self.exhausted:
            raise TimeBudgetExceeded(
                f"time budget of {self.limit_seconds:.1f}s exceeded "
                f"({self.elapsed:.1f}s elapsed)"
            )


def run_with_budget(
    function: Callable[[], object], limit_seconds: float | None
) -> tuple[object | None, float, bool]:
    """Run ``function`` and report ``(result, elapsed, within_budget)``.

    The budget is enforced *a posteriori* (the run is not interrupted): when
    the elapsed time exceeds the limit the result is discarded and
    ``within_budget`` is ``False``, reproducing the paper's protocol of
    dropping algorithms that exceed the cap.
    """
    start = time.perf_counter()
    result = function()
    elapsed = time.perf_counter() - start
    if limit_seconds is not None and elapsed > limit_seconds:
        return None, elapsed, False
    return result, elapsed, True
