"""Guidance engine: which algorithm to use for a given dataset (Section 7.4).

The paper closes its analysis with recommendations based on the dataset
features it identified as driving algorithm behaviour — size, similarity,
presence of (large) ties / unification buckets — and the user's preferred
trade-off between quality and running time:

* **BioConsert** is the default choice: best quality in the vast majority
  of cases, reasonable time, robust to the normalization process;
* the **ExactAlgorithm** is recommended only when optimality is mandatory
  and the dataset is small enough;
* **KwikSort** is the fallback for extremely large datasets (the paper
  quotes n > 30 000, where BioConsert's O(n²) memory becomes a problem),
  and it benefits from similar datasets;
* when speed dominates, **BordaCount** is recommended for datasets with few
  ties while **MEDRank** handles large ties / unification buckets better.

:func:`recommend` encodes these rules over a :class:`DatasetProfile`
(derived automatically from a dataset with :func:`profile_dataset`) and
returns an ordered list of recommendations with the rationale for each.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..datasets.dataset import Dataset

__all__ = ["Priority", "DatasetProfile", "Recommendation", "profile_dataset", "recommend"]


class Priority(str, Enum):
    """What the user cares most about."""

    QUALITY = "quality"
    BALANCED = "balanced"
    SPEED = "speed"
    OPTIMALITY = "optimality"


@dataclass(frozen=True)
class DatasetProfile:
    """The dataset features the guidance rules consider."""

    num_elements: int
    num_rankings: int
    similarity: float | None
    tie_density: float
    has_large_buckets: bool

    @property
    def is_small(self) -> bool:
        """Small enough for the exact LPB algorithm within a reasonable budget."""
        return self.num_elements <= 25

    @property
    def is_huge(self) -> bool:
        """Above the size where BioConsert's O(n²) memory becomes a concern."""
        return self.num_elements > 30_000

    @property
    def is_similar(self) -> bool:
        return self.similarity is not None and self.similarity >= 0.3


@dataclass(frozen=True)
class Recommendation:
    """An algorithm recommendation with its justification."""

    algorithm: str
    reason: str


def profile_dataset(dataset: Dataset, *, large_bucket_threshold: int = 10) -> DatasetProfile:
    """Extract the guidance-relevant features from a (complete) dataset."""
    similarity: float | None
    try:
        similarity = dataset.similarity() if dataset.num_elements >= 2 else None
    except Exception:  # incomplete dataset: similarity undefined
        similarity = None
    has_large_buckets = any(
        ranking.max_bucket_size() >= large_bucket_threshold for ranking in dataset.rankings
    )
    return DatasetProfile(
        num_elements=dataset.num_elements,
        num_rankings=dataset.num_rankings,
        similarity=similarity,
        tie_density=dataset.tie_density(),
        has_large_buckets=has_large_buckets,
    )


def recommend(
    profile: DatasetProfile | Dataset, priority: Priority | str = Priority.BALANCED
) -> list[Recommendation]:
    """Ordered algorithm recommendations for a dataset profile.

    The first recommendation is the primary choice; the following entries
    are the alternatives the paper mentions for the same situation.

    Parameters
    ----------
    profile:
        A :class:`DatasetProfile`, or a :class:`~repro.datasets.Dataset`
        (profiled automatically).
    priority:
        The user's preferred trade-off (a :class:`Priority` or its value).
    """
    if isinstance(profile, Dataset):
        profile = profile_dataset(profile)
    priority = Priority(priority)
    recommendations: list[Recommendation] = []

    if priority is Priority.OPTIMALITY:
        if profile.is_small:
            recommendations.append(
                Recommendation(
                    "ExactAlgorithm",
                    "optimal consensus required and the dataset is small enough for "
                    "the ties-aware integer program (Section 4.2)",
                )
            )
            recommendations.append(
                Recommendation(
                    "BioConsert",
                    "near-optimal fallback if the exact solver exceeds its time budget",
                )
            )
            return recommendations
        recommendations.append(
            Recommendation(
                "BioConsert",
                "the dataset is too large for the exact program; BioConsert gives the "
                "best quality among heuristics (Section 7.4)",
            )
        )
        return recommendations

    if priority is Priority.SPEED:
        if profile.has_large_buckets or profile.tie_density > 0.25:
            recommendations.append(
                Recommendation(
                    "MEDRank(0.5)",
                    "fastest family and robust to the large (unification) buckets "
                    "present in the input (Figure 5)",
                )
            )
            recommendations.append(
                Recommendation(
                    "CopelandMethod",
                    "positional alternative; outperforms BordaCount on unified data",
                )
            )
        else:
            recommendations.append(
                Recommendation(
                    "BordaCount",
                    "positional algorithms answer in microseconds and BordaCount is "
                    "a good choice when few ties are involved (Section 7.4)",
                )
            )
            recommendations.append(
                Recommendation("MEDRank(0.5)", "equally fast alternative")
            )
        return recommendations

    # QUALITY and BALANCED share the same backbone.
    if profile.is_huge:
        recommendations.append(
            Recommendation(
                "KwikSort",
                "for extremely large datasets (n > 30 000) BioConsert's quadratic "
                "memory is prohibitive; KwikSort is the best alternative and "
                "benefits from dataset similarity (Section 7.4)",
            )
        )
        recommendations.append(
            Recommendation("BordaCount", "if even KwikSort is too slow at this scale")
        )
        return recommendations

    primary_reason = (
        "best quality in the very large majority of datasets, takes advantage of "
        "similarity and is independent of the normalization process (Section 7.4)"
    )
    recommendations.append(Recommendation("BioConsert", primary_reason))
    if priority is Priority.QUALITY and profile.is_small:
        recommendations.append(
            Recommendation(
                "ExactAlgorithm",
                "small dataset: the exact LPB program certifies optimality",
            )
        )
    if profile.is_similar:
        recommendations.append(
            Recommendation(
                "KwikSortMin",
                "similar input rankings: KwikSort's quality improves markedly with "
                "similarity (Figure 4) at a fraction of BioConsert's cost",
            )
        )
    else:
        recommendations.append(
            Recommendation(
                "KwikSortMin",
                "cheaper alternative when BioConsert is too slow; run repeatedly and "
                "keep the best consensus",
            )
        )
    return recommendations
