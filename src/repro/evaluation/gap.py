"""Quality metrics: gap and m-gap (Section 6.2.3).

The paper compares consensus quality through the *gap*: the relative extra
disagreement of a consensus with respect to an optimal one,

    gap = K(c, R) / K(c*, R) - 1

where ``c*`` is an optimal consensus of the dataset ``R``.  An optimal
consensus has a gap of 0.  When computing an optimal consensus is not
feasible (large unified datasets), the paper falls back to the *m-gap*,
where the reference is the best consensus produced by any of the evaluated
algorithms.

This module provides both metrics plus small helpers to aggregate them
across datasets (average gap, percentage of optimal solutions, percentage
of datasets where an algorithm is ranked first) — the three columns of
Table 5.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = [
    "gap",
    "m_gap",
    "gaps_for_scores",
    "average_gap",
    "fraction_optimal",
    "fraction_first",
    "rank_algorithms",
]

_EPSILON = 1e-12


def gap(score: float, optimal_score: float) -> float:
    """Relative extra disagreement of a consensus versus an optimal consensus.

    Both scores are generalized Kemeny scores against the same dataset.  An
    optimal score of 0 (all input rankings identical) yields a gap of 0 when
    the consensus also has score 0, and ``float('inf')`` otherwise.
    """
    if score < 0 or optimal_score < 0:
        raise ValueError("Kemeny scores cannot be negative")
    if optimal_score <= _EPSILON:
        return 0.0 if score <= _EPSILON else float("inf")
    return score / optimal_score - 1.0


def m_gap(score: float, best_known_score: float) -> float:
    """Gap against the best consensus produced by any available algorithm."""
    return gap(score, best_known_score)


def gaps_for_scores(
    scores: Mapping[str, float], optimal_score: float | None = None
) -> dict[str, float]:
    """Per-algorithm gap given a mapping algorithm name -> Kemeny score.

    With ``optimal_score`` omitted, the m-gap is computed against the best
    score present in the mapping.
    """
    if not scores:
        return {}
    reference = optimal_score if optimal_score is not None else min(scores.values())
    return {name: gap(score, reference) for name, score in scores.items()}


def average_gap(per_dataset_gaps: Sequence[float]) -> float:
    """Average of per-dataset gaps, ignoring missing (``None``/NaN-free) entries."""
    values = [value for value in per_dataset_gaps if value is not None]
    if not values:
        return float("nan")
    return sum(values) / len(values)


def fraction_optimal(per_dataset_gaps: Sequence[float], tolerance: float = 1e-9) -> float:
    """Fraction of datasets where the algorithm achieves a gap of zero."""
    values = [value for value in per_dataset_gaps if value is not None]
    if not values:
        return float("nan")
    return sum(1 for value in values if value <= tolerance) / len(values)


def fraction_first(
    per_dataset_scores: Sequence[Mapping[str, float]], algorithm: str
) -> float:
    """Fraction of datasets where ``algorithm`` achieves the best score.

    Several algorithms can be "first" on the same dataset (shared best
    score), matching the paper's "%first" column where the percentages sum
    to more than 100%.
    """
    if not per_dataset_scores:
        return float("nan")
    count = 0
    applicable = 0
    for scores in per_dataset_scores:
        if algorithm not in scores:
            continue
        applicable += 1
        best = min(scores.values())
        if scores[algorithm] <= best + _EPSILON:
            count += 1
    if applicable == 0:
        return float("nan")
    return count / applicable


def rank_algorithms(average_gaps: Mapping[str, float]) -> dict[str, int]:
    """Rank algorithms by average gap (1 = best), as in Table 4 / Table 5."""
    ordered = sorted(average_gaps.items(), key=lambda item: (item[1], item[0]))
    return {name: rank + 1 for rank, (name, _) in enumerate(ordered)}
