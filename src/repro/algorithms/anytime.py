"""Anytime / incremental execution protocol for local-search algorithms.

The paper's closing guidance (Section 7.4) only matters under real time
constraints: a serving system given a deadline must return the *best
consensus found so far* instead of nothing.  This module defines the
anytime contract the local-search family implements and the helpers the
service layer (:mod:`repro.service`) builds on:

* an algorithm that *supports anytime execution* exposes
  ``begin_anytime(dataset)`` returning an :class:`AnytimeController`;
* the controller advances the underlying search one increment at a time
  (``step()`` — one local-search sweep, one Chanas round, one annealing
  plateau, ...), tracking the best candidate seen so far
  (:meth:`AnytimeController.best_so_far`) with a **monotone non-increasing**
  generalized Kemeny score;
* :func:`run_anytime` drives a controller against a wall-clock deadline
  and packages the best candidate as a regular
  :class:`~repro.algorithms.base.AggregationResult`.

Algorithms plug in by implementing ``_anytime_candidates(rankings,
weights)``: a generator yielding successive candidate consensus rankings
(the first yield must come cheaply, so a controller always holds a valid
consensus after one step — even under an already-expired deadline).
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Sequence
from typing import Any, Protocol, runtime_checkable

from ..core.kemeny import generalized_kemeny_score_from_weights
from ..core.pairwise import PairwiseWeights
from ..core.ranking import Ranking
from ..datasets.dataset import Dataset
from ..telemetry import runtime as _telemetry
from .base import AggregationResult, RankAggregator

__all__ = [
    "AnytimeController",
    "SupportsAnytime",
    "supports_anytime",
    "resolve_weights",
    "dataset_label",
    "run_anytime",
]


def dataset_label(dataset: Dataset | Sequence[Ranking]) -> str:
    """Telemetry label of an anytime search's input.

    Parameters
    ----------
    dataset:
        The original argument of ``begin_anytime``; a
        :class:`~repro.datasets.Dataset` contributes its name, a plain
        sequence of rankings has none.
    """
    return dataset.name if isinstance(dataset, Dataset) else ""


def resolve_weights(
    dataset: Dataset | Sequence[Ranking],
    rankings: Sequence[Ranking],
    weights: PairwiseWeights | None,
) -> PairwiseWeights:
    """Pairwise weights for an anytime search, reusing shared preparation.

    Resolution order: explicitly passed ``weights`` (the portfolio
    scheduler shares one build across its racers), then the dataset's
    memoized preparation plan (:meth:`repro.datasets.Dataset.prepared`),
    then a fresh build from the validated rankings.

    Parameters
    ----------
    dataset:
        The original argument of ``begin_anytime`` (dataset or sequence).
    rankings:
        The validated rankings of ``dataset``.
    weights:
        Caller-supplied pre-computed weights, or ``None``.
    """
    if weights is not None:
        return weights
    if isinstance(dataset, Dataset):
        return dataset.prepared().weights
    return PairwiseWeights(rankings)


@runtime_checkable
class SupportsAnytime(Protocol):
    """Structural type of algorithms exposing the anytime protocol."""

    def begin_anytime(
        self,
        dataset: Dataset | Sequence[Ranking],
        weights: PairwiseWeights | None = None,
        *,
        initial: Ranking | None = None,
    ) -> "AnytimeController":
        """Start an incremental search over ``dataset``.

        Implementations accept optional pre-computed pairwise ``weights``
        so callers racing several searches over one dataset (the portfolio
        scheduler) can share a single O(m·n²) construction, and an optional
        ``initial`` consensus to warm-start from: its refinement trajectory
        is searched *first*, so a warm-started run over a slightly mutated
        dataset (:class:`~repro.core.live.LiveDataset` repair) reconverges
        in a fraction of the cold search — while the cold candidate stream
        still follows, keeping the completed result never worse than a cold
        run's.
        """


def supports_anytime(algorithm: object) -> bool:
    """Whether ``algorithm`` implements the anytime protocol.

    Parameters
    ----------
    algorithm:
        Any object; returns ``True`` when it exposes a callable
        ``begin_anytime`` attribute.
    """
    return callable(getattr(algorithm, "begin_anytime", None))


class AnytimeController:
    """Drives one incremental search and tracks the best candidate so far.

    A controller wraps a candidate generator produced by an algorithm's
    ``_anytime_candidates`` hook.  Each :meth:`step` call advances the
    generator by one increment, scores the yielded candidate and keeps it
    when it improves on the best seen so far — so
    :meth:`best_so_far` / :attr:`best_score` are monotone (the score never
    increases across steps).

    Parameters
    ----------
    algorithm_name:
        Name reported on the packaged :class:`AggregationResult`.
    candidates:
        Iterator yielding successive candidate consensus rankings.  The
        first item must be produced cheaply (a starting candidate), so one
        ``step()`` always suffices to hold a valid consensus.
    weights:
        Pairwise weights of the input dataset, used to score candidates.
    dataset_name:
        Optional dataset label recorded on the telemetry convergence
        stream (empty for anonymous ranking sequences).
    """

    def __init__(
        self,
        algorithm_name: str,
        candidates: Iterator[Ranking],
        weights: PairwiseWeights,
        *,
        dataset_name: str = "",
    ):
        self.algorithm_name = algorithm_name
        self.weights = weights
        self.dataset_name = dataset_name
        self._candidates = candidates
        self._best: Ranking | None = None
        self._best_score: int | None = None
        self._steps = 0
        self._finished = False
        self._stream = None
        self._started: float | None = None

    # ------------------------------------------------------------------ #
    @property
    def steps(self) -> int:
        """Number of :meth:`step` calls that advanced the search."""
        return self._steps

    @property
    def finished(self) -> bool:
        """Whether the underlying search ran to completion."""
        return self._finished

    @property
    def best_score(self) -> int | None:
        """Generalized Kemeny score of the best candidate so far.

        ``None`` until the first step; monotone non-increasing afterwards.
        """
        return self._best_score

    def best_so_far(self) -> Ranking | None:
        """Best consensus found so far (``None`` before the first step)."""
        return self._best

    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Advance the search by one increment.

        Returns ``True`` while the search can still make progress and
        ``False`` once it is exhausted (the controller is then *finished*
        and further calls are no-ops).
        """
        if self._finished:
            return False
        if self._started is None:
            self._started = time.perf_counter()
        try:
            candidate = next(self._candidates)
        except StopIteration:
            self._finished = True
            return False
        self._steps += 1
        score = generalized_kemeny_score_from_weights(candidate, self.weights)
        if self._best_score is None or score < self._best_score:
            self._best = candidate
            self._best_score = score
        if _telemetry.is_enabled():
            if self._stream is None:
                self._stream = _telemetry.convergence_stream(
                    self.algorithm_name, dataset=self.dataset_name
                )
            self._stream.record(
                self._steps,
                float(self._best_score),
                time.perf_counter() - self._started,
            )
        return True

    def run_to_completion(self) -> Ranking:
        """Drain the search entirely and return the best consensus."""
        while self.step():
            pass
        assert self._best is not None, "anytime search yielded no candidate"
        return self._best

    def result(self, *, elapsed_seconds: float = 0.0, **extra: Any) -> AggregationResult:
        """Package the best candidate as an :class:`AggregationResult`.

        Parameters
        ----------
        elapsed_seconds:
            Wall-clock time to record on the result.
        extra:
            Additional entries merged into the result's ``details``.
        """
        if self._best is None or self._best_score is None:
            raise RuntimeError(
                "anytime search has no candidate yet; call step() at least once"
            )
        details: dict[str, Any] = {
            "anytime": True,
            "steps": self._steps,
            "finished": self._finished,
        }
        details.update(extra)
        return AggregationResult(
            consensus=self._best,
            score=self._best_score,
            algorithm=self.algorithm_name,
            elapsed_seconds=elapsed_seconds,
            details=details,
        )

    def __repr__(self) -> str:
        return (
            f"AnytimeController(algorithm={self.algorithm_name!r}, "
            f"steps={self._steps}, best_score={self._best_score}, "
            f"finished={self._finished})"
        )


def run_anytime(
    algorithm: RankAggregator,
    dataset: Dataset | Sequence[Ranking],
    budget_seconds: float | None,
    *,
    min_steps: int = 1,
    initial: Ranking | None = None,
) -> AggregationResult:
    """Run ``algorithm`` on ``dataset`` under a wall-clock deadline.

    The algorithm must implement the anytime protocol
    (:func:`supports_anytime`).  The search is advanced step by step until
    it finishes or the budget is exhausted; the best consensus found so far
    is always returned — a deadline never produces "no result".

    Parameters
    ----------
    algorithm:
        An aggregator exposing ``begin_anytime`` (BioConsert, Chanas,
        ChanasBoth, chained variants, simulated annealing).
    dataset:
        The complete dataset (or sequence of rankings) to aggregate.
    budget_seconds:
        Wall-clock budget; ``None`` runs the search to completion.
    min_steps:
        Steps always taken regardless of the deadline (default 1, which
        guarantees a valid consensus even under an expired budget).
    initial:
        Optional consensus to warm-start the search from (e.g. the
        pre-mutation consensus when repairing after a
        :class:`~repro.core.live.LiveDataset` write); its refinement
        trajectory runs first, and the result records
        ``details["warm_start"] = True``.
    """
    if not supports_anytime(algorithm):
        raise TypeError(
            f"{type(algorithm).__name__} does not support anytime execution; "
            "expected a begin_anytime(dataset) method"
        )
    start = time.perf_counter()
    if initial is None:
        controller = algorithm.begin_anytime(dataset)
    else:
        controller = algorithm.begin_anytime(dataset, initial=initial)
    deadline = None if budget_seconds is None else start + budget_seconds
    while True:
        if (
            deadline is not None
            and controller.steps >= min_steps
            and time.perf_counter() >= deadline
        ):
            break
        if not controller.step():
            break
    elapsed = time.perf_counter() - start
    return controller.result(
        elapsed_seconds=elapsed,
        budget_seconds=budget_seconds,
        deadline_hit=not controller.finished,
        warm_start=initial is not None,
    )
