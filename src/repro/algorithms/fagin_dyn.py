"""FaginDyn (Fagin, Kumar, Mahdian, Sivakumar & Vee 2004).

Dynamic-programming algorithm designed natively for rankings with ties
(family [G], Section 3.1), 4-approximation, running in O(n·m + n²):

1. elements are ordered by a positional score (their Borda score, i.e. the
   sum of the number of elements placed before them in each ranking);
2. a dynamic program chooses how to split this fixed order into contiguous
   buckets so as to minimise the generalized Kemeny score: with the element
   order fixed, the only remaining decision for a pair is whether it is
   tied (same bucket) or ordered (different buckets), so the optimal
   bucketing of a prefix decomposes over the last bucket.

Two variants are evaluated in the paper (Section 3.1): **FaginLarge**
favours solutions with large buckets and **FaginSmall** favours small
buckets; they differ only in how cost ties are broken in the dynamic
program.  Figure 5 of the paper shows the practical impact of this choice
when the unification process creates large ending buckets.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.pairwise import PairwiseWeights
from ..core.ranking import Ranking
from .base import RankAggregator
from .borda import borda_scores

__all__ = ["FaginDyn", "FaginSmall", "FaginLarge"]


class FaginDyn(RankAggregator):
    """Score-then-bucket dynamic programming over rankings with ties."""

    name = "FaginDyn"
    family = "G"
    approximation = "4"
    produces_ties = True
    accounts_for_tie_cost = True
    randomized = False

    def __init__(self, *, prefer: str = "small", seed: int | None = None):
        """
        Parameters
        ----------
        prefer:
            ``"small"`` (FaginSmall) or ``"large"`` (FaginLarge): which
            bucket size to favour when two bucketings have the same cost.
        """
        super().__init__(seed=seed)
        if prefer not in ("small", "large"):
            raise ValueError(f"prefer must be 'small' or 'large', got {prefer!r}")
        self._prefer = prefer
        self.name = "FaginSmall" if prefer == "small" else "FaginLarge"

    # ------------------------------------------------------------------ #
    def _aggregate(
        self, rankings: Sequence[Ranking], weights: PairwiseWeights
    ) -> Ranking:
        # 1. Fix the element order by Borda score (ascending = best first).
        scores = borda_scores(rankings)
        ordered_elements = sorted(
            weights.elements, key=lambda element: (scores[element], _element_key(element))
        )
        order_indices = np.asarray(
            [weights.index_of[element] for element in ordered_elements], dtype=np.intp
        )

        # 2. Pair-cost matrices re-indexed along the fixed order.
        cost_before = weights.cost_before()[np.ix_(order_indices, order_indices)]
        cost_tied = weights.cost_tied()[np.ix_(order_indices, order_indices)]
        boundaries = self._optimal_boundaries(cost_before, cost_tied)

        # 3. Materialise the buckets from the boundary list.
        buckets = []
        start = 0
        for end in boundaries:
            buckets.append(list(ordered_elements[start:end]))
            start = end
        return Ranking(buckets)

    # ------------------------------------------------------------------ #
    def _optimal_boundaries(
        self, cost_before: np.ndarray, cost_tied: np.ndarray
    ) -> list[int]:
        """Dynamic program over prefix lengths.

        ``dp[i]`` is the minimal *tie adjustment* of the first ``i`` elements:
        the base cost (every pair ordered as in the fixed order) is constant,
        so only the delta ``cost_tied - cost_before`` of the pairs that end up
        in the same bucket matters.  ``delta_from[j]`` maintained in the
        inner loop is the adjustment of making ``elements[j:i]`` one bucket.

        Cost ties are broken globally on the number of buckets: FaginLarge
        minimises it (few large buckets), FaginSmall maximises it (many
        small buckets).  Returns the list of bucket end positions.
        """
        n = cost_before.shape[0]
        if n == 0:
            return []
        diff = cost_tied - cost_before  # delta of tying the pair instead of ordering it
        dp = np.zeros(n + 1, dtype=np.int64)
        bucket_count = np.zeros(n + 1, dtype=np.int64)
        back = np.zeros(n + 1, dtype=np.intp)
        # delta_from[j] = adjustment of bucket elements[j:i] for the current i.
        delta_from = np.zeros(n + 1, dtype=np.int64)
        prefer_large = self._prefer == "large"
        # Lexicographic comparison (cost, tie-break) folded into one integer:
        # the secondary term is bounded by n + 1, so scaling the primary cost
        # by (n + 2) keeps the order exact.
        scale = n + 2
        for i in range(1, n + 1):
            new_element = i - 1
            # Extend every open segment with the new element: add the pair
            # deltas between the new element and elements j .. i-2.
            if i >= 2:
                column = diff[:new_element, new_element]
                suffix = np.concatenate((np.cumsum(column[::-1])[::-1], [0]))
                delta_from[:i] += suffix
            delta_from[i - 1] = 0  # segment containing only the new element
            candidates = dp[:i] + delta_from[:i]
            counts = bucket_count[:i] + 1
            secondary = counts if prefer_large else (n + 1 - counts)
            best_j = int(np.argmin(candidates * scale + secondary))
            dp[i] = candidates[best_j]
            bucket_count[i] = bucket_count[best_j] + 1
            back[i] = best_j
        boundaries: list[int] = []
        position = n
        while position > 0:
            boundaries.append(position)
            position = int(back[position])
        boundaries.reverse()
        return boundaries


class FaginSmall(FaginDyn):
    """FaginDyn variant favouring small buckets on cost ties."""

    name = "FaginSmall"

    def __init__(self, *, seed: int | None = None):
        super().__init__(prefer="small", seed=seed)


class FaginLarge(FaginDyn):
    """FaginDyn variant favouring large buckets on cost ties."""

    name = "FaginLarge"

    def __init__(self, *, seed: int | None = None):
        super().__init__(prefer="large", seed=seed)


def _element_key(element) -> tuple[str, str]:
    return (type(element).__name__, repr(element))
