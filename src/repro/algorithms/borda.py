"""BordaCount (Borda 1781), adapted to rankings with ties.

Positional algorithm (family [P], Section 3.3).  The position of an element
in a ranking with ties is *the number of elements placed strictly before it,
plus one* — a formulation that directly encompasses ties (Section 4.1.3).
The Borda score of an element is the sum of its positions across the input
rankings; elements are sorted by increasing score.

Ties adaptation: elements whose total scores are exactly equal are placed in
the same bucket (the "slight modification" of Table 1).  The algorithm
cannot account for the *cost* of (un)tying elements: a single input ranking
breaking a tie is enough to untie the pair in the consensus, which is the
behaviour Section 4.1.3 points out and Figure 5 measures.

Two kernels compute the scores: ``kernel="arrays"`` (default) reads them
off the dataset's dense position tensor through
:func:`repro.core.arrays.positional_counts` — one vectorised pass, no
per-bucket Python loop — while ``kernel="reference"`` walks the bucket
lists (the seed implementation, retained as ground truth).  The integer
sums are identical, so both kernels produce the same consensus.

Complexity: O(n·m + n log n).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.arrays import positional_counts
from ..core.pairwise import PairwiseWeights
from ..core.ranking import Element, Ranking
from .base import RankAggregator

__all__ = ["BordaCount", "borda_scores", "borda_scores_from_weights"]


def borda_scores(rankings: Sequence[Ranking]) -> dict[Element, float]:
    """Borda score of every element: sum over rankings of (1 + #elements before)."""
    scores: dict[Element, float] = {}
    for ranking in rankings:
        elements_before = 0
        for bucket in ranking.buckets:
            position = elements_before + 1
            for element in bucket:
                scores[element] = scores.get(element, 0.0) + position
            elements_before += len(bucket)
    return scores


def borda_scores_from_weights(weights: PairwiseWeights) -> dict[Element, float]:
    """Borda scores computed from the prepared position tensor.

    Vectorised twin of :func:`borda_scores`: the per-element
    elements-before counts come from one
    :func:`~repro.core.arrays.positional_counts` pass over
    ``weights.positions``.  Every per-ranking position is an integer far
    below 2**53, so the float scores are exactly the reference sums.

    Parameters
    ----------
    weights:
        Prepared pairwise weights of the dataset (carrying the tensor).
    """
    before_counts, _ = positional_counts(weights.positions)
    totals = before_counts.sum(axis=0) + weights.num_rankings
    return {
        element: float(totals[index])
        for index, element in enumerate(weights.elements)
    }


class BordaCount(RankAggregator):
    """Sort elements by the sum of their positions in the input rankings."""

    name = "BordaCount"
    family = "P"
    approximation = "5"
    produces_ties = True
    accounts_for_tie_cost = False
    randomized = False

    def __init__(
        self,
        *,
        tie_equal_scores: bool = True,
        seed: int | None = None,
        kernel: str = "arrays",
    ):
        """
        Parameters
        ----------
        tie_equal_scores:
            When ``True`` (default), elements with exactly equal Borda scores
            are tied in the consensus.  When ``False`` the output is a
            permutation (ties broken deterministically by element order),
            matching the original permutation-only formulation.
        kernel:
            ``"arrays"`` (default) scores from the prepared position
            tensor; ``"reference"`` walks the bucket lists (seed path).
            Both produce identical consensus rankings.
        """
        super().__init__(seed=seed)
        if kernel not in ("arrays", "reference"):
            raise ValueError(f"unknown kernel {kernel!r}; expected 'arrays' or 'reference'")
        self._tie_equal_scores = tie_equal_scores
        self._kernel = kernel

    def _aggregate(
        self, rankings: Sequence[Ranking], weights: PairwiseWeights
    ) -> Ranking:
        if self._kernel == "arrays":
            scores = borda_scores_from_weights(weights)
        else:
            scores = borda_scores(rankings)
        consensus = Ranking.from_scores(scores)
        if self._tie_equal_scores:
            return consensus
        return consensus.break_ties()
