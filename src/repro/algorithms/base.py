"""Base class shared by every rank-aggregation algorithm.

Every algorithm of the paper's Table 1 implements the same contract: given
a *complete* dataset (all rankings over the same elements), produce a
consensus ranking — possibly with ties — over those elements.  The base
class factors out the common machinery:

* input validation (completeness, non-emptiness);
* optional random seed handling for randomized algorithms;
* computation of the pairwise weight matrices, shared with subclasses;
* the ``aggregate`` entry point returning an :class:`AggregationResult`
  carrying the consensus, its generalized Kemeny score and bookkeeping
  (wall-clock time, algorithm name, extra diagnostics).

Algorithm classes declare their Table 1 capabilities as class attributes
(approximation guarantee, algorithm family, whether they can produce ties,
whether they account for the cost of untying); the registry uses them to
regenerate Table 1.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.exceptions import DomainMismatchError, EmptyDatasetError
from ..core.kemeny import generalized_kemeny_score_from_weights
from ..core.pairwise import PairwiseWeights
from ..core.prepared import PreparedDataset, prepare_rankings
from ..core.ranking import Ranking
from ..datasets.dataset import Dataset
from ..telemetry import runtime as _telemetry

__all__ = ["AggregationResult", "RankAggregator"]


@dataclass
class AggregationResult:
    """Outcome of one aggregation run.

    Attributes
    ----------
    consensus:
        The consensus ranking produced by the algorithm.
    score:
        Its generalized Kemeny score against the input rankings.
    algorithm:
        Name of the algorithm that produced it.
    elapsed_seconds:
        Wall-clock time of the ``aggregate`` call.
    details:
        Algorithm-specific diagnostics (number of iterations, LP status,
        number of restarts, ...).
    """

    consensus: Ranking
    score: int
    algorithm: str
    elapsed_seconds: float = 0.0
    details: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"AggregationResult(algorithm={self.algorithm!r}, score={self.score}, "
            f"elapsed={self.elapsed_seconds:.4f}s)"
        )


class RankAggregator(ABC):
    """Abstract base class of all aggregation algorithms.

    Subclasses implement :meth:`_aggregate` which receives the validated
    list of rankings and the pre-computed pairwise weights and returns the
    consensus ranking.

    Class attributes (Table 1 metadata)
    -----------------------------------
    name:
        Canonical algorithm name as used in the paper's tables.
    family:
        ``"G"`` for generalized-Kendall-τ based, ``"K"`` for Kendall-τ
        based, ``"P"`` for positional (Section 3).
    approximation:
        Approximation guarantee as a string (``"3/2"``, ``"2"``, ``"exact"``,
        ``None`` when no guarantee is known).
    produces_ties:
        Whether the implementation can output rankings with ties.
    accounts_for_tie_cost:
        Whether the objective optimised by the algorithm includes the cost
        of (un)tying elements (generalized Kendall-τ) or ignores it
        (classical Kendall-τ / positional scores).
    randomized:
        Whether the algorithm uses randomness (and therefore accepts a seed).
    """

    name: str = "abstract"
    family: str = "K"
    approximation: str | None = None
    produces_ties: bool = False
    accounts_for_tie_cost: bool = False
    randomized: bool = False

    def __init__(self, *, seed: int | None = None):
        self._seed = seed

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def aggregate(
        self,
        dataset: Dataset | Sequence[Ranking],
        *,
        prepared: PreparedDataset | None = None,
    ) -> AggregationResult:
        """Aggregate a dataset into a consensus ranking.

        Accepts either a :class:`~repro.datasets.Dataset` or a plain
        sequence of rankings.  The dataset must be complete (all rankings
        over the same elements) and non-empty.

        Parameters
        ----------
        dataset:
            The dataset (or sequence of rankings) to aggregate.
        prepared:
            Optional pre-built preparation plan for *this* dataset (see
            :mod:`repro.core.prepared`).  When omitted, a
            :class:`~repro.datasets.Dataset` serves its memoized plan and
            a plain sequence is prepared on the spot.  Callers running
            several algorithms over one dataset pass the shared plan so
            the O(m·n²) weight matrices are built once, not per run.

        Notes
        -----
        ``elapsed_seconds`` covers the whole call — preparation (when it
        happened here), search and scoring — and
        ``details["prepare_seconds"]`` reports the preparation share
        explicitly, so time-budget accounting no longer under-counts the
        weights build.

        With telemetry enabled (:mod:`repro.telemetry`) the call records
        an ``aggregate`` span with ``prepare``/``solve``/``score`` child
        spans and per-stage latency histograms; disabled, the
        instrumentation short-circuits to shared no-ops.
        """
        start = time.perf_counter()
        with _telemetry.span("aggregate", algorithm=self.name) as trace:
            rankings = self._validate(dataset)
            prep_start = time.perf_counter()
            with _telemetry.span("aggregate.prepare"):
                if prepared is None:
                    if isinstance(dataset, Dataset):
                        prepared = dataset.prepared()
                    else:
                        prepared = prepare_rankings(rankings)
                elif not prepared.matches(rankings):
                    raise ValueError(
                        f"prepared plan ({prepared!r}) does not describe the dataset "
                        "being aggregated; build it from the same rankings"
                    )
            prepare_seconds = time.perf_counter() - prep_start
            weights = prepared.weights
            with _telemetry.span("aggregate.solve"):
                consensus = self._aggregate(rankings, weights)
            with _telemetry.span("aggregate.score"):
                score = generalized_kemeny_score_from_weights(consensus, weights)
            elapsed = time.perf_counter() - start
            if _telemetry.is_enabled():
                trace.set(
                    score=int(score),
                    num_rankings=len(rankings),
                    num_elements=len(rankings[0].domain),
                )
                _telemetry.observe(
                    "aggregate.seconds", elapsed, algorithm=self.name, stage="total"
                )
                _telemetry.observe(
                    "aggregate.seconds",
                    prepare_seconds,
                    algorithm=self.name,
                    stage="prepare",
                )
        details = dict(self._last_details())
        details["prepare_seconds"] = prepare_seconds
        return AggregationResult(
            consensus=consensus,
            score=score,
            algorithm=self.name,
            elapsed_seconds=elapsed,
            details=details,
        )

    def consensus(self, dataset: Dataset | Sequence[Ranking]) -> Ranking:
        """Shortcut returning only the consensus ranking."""
        return self.aggregate(dataset).consensus

    # ------------------------------------------------------------------ #
    # Hooks for subclasses
    # ------------------------------------------------------------------ #
    @abstractmethod
    def _aggregate(
        self, rankings: Sequence[Ranking], weights: PairwiseWeights
    ) -> Ranking:
        """Produce the consensus ranking.  Implemented by subclasses."""

    def _last_details(self) -> dict[str, Any]:
        """Diagnostics of the last run; subclasses may override."""
        return {}

    def _rng(self) -> np.random.Generator:
        """Random generator derived from the configured seed."""
        return np.random.default_rng(self._seed)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate(dataset: Dataset | Sequence[Ranking]) -> list[Ranking]:
        if isinstance(dataset, Dataset):
            rankings = list(dataset.rankings)
            name = dataset.name
        else:
            rankings = list(dataset)
            name = "<rankings>"
        if not rankings:
            raise EmptyDatasetError(f"cannot aggregate empty dataset {name!r}")
        domain = rankings[0].domain
        if any(ranking.domain != domain for ranking in rankings[1:]):
            raise DomainMismatchError(
                f"dataset {name!r} is not complete; apply projection or "
                "unification before aggregating"
            )
        if not domain:
            raise EmptyDatasetError(f"dataset {name!r} ranks no element")
        return rankings

    # ------------------------------------------------------------------ #
    def describe(self) -> dict[str, Any]:
        """Table 1 style description of the algorithm."""
        return {
            "name": self.name,
            "family": self.family,
            "approximation": self.approximation,
            "produces_ties": self.produces_ties,
            "accounts_for_tie_cost": self.accounts_for_tie_cost,
            "randomized": self.randomized,
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
