"""Chanas and ChanasBoth local-search heuristics (permutations only).

Chanas & Kobylański (1996) proposed a local-search heuristic for the linear
ordering problem built on two operations applied to a permutation:

* **sort**: repeatedly sweep the permutation and move an element earlier
  (insertion moves) whenever doing so reduces the number of pairwise
  disagreements — iterated until a fixed point;
* **reverse**: reverse the current permutation (which keeps the fixed point
  property interesting: the reversed permutation can often be improved
  again).

The *Chanas* heuristic alternates ``sort`` and ``reverse`` until the score
stops improving.  *ChanasBoth* ([13], [31]) additionally runs the procedure
from both the identity-style starting points and keeps the best result; our
implementation starts from every input ranking (with ties broken) as well as
from the Borda order, which matches the spirit of the "both" variant used in
the experimental studies.

These algorithms are Kendall-τ based (family [K]) and cannot handle ties
(Table 1): inputs containing ties are accepted (the positions are read
through the generalized pairwise weights) but the output is always a
permutation and the cost of (un)tying is ignored during the search.

Two kernels implement the sort pass: ``kernel="arrays"`` (default) keeps the
permutation as a dense index vector and applies every insertion move with
vectorised delete/insert, while ``kernel="reference"`` is the original
Python-list implementation, retained as ground truth.  Both evaluate the
same insertion points with the same first-minimum tie-breaking, so their
search trajectories — and outputs — are identical.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from ..core.kemeny import generalized_kemeny_score_from_weights
from ..core.pairwise import PairwiseWeights
from ..core.ranking import Ranking
from ..datasets.dataset import Dataset
from .anytime import AnytimeController, dataset_label, resolve_weights
from .base import RankAggregator
from .borda import borda_scores_from_weights

__all__ = ["Chanas", "ChanasBoth"]


class Chanas(RankAggregator):
    """Alternate insertion-sort improvement passes and permutation reversal."""

    name = "Chanas"
    family = "K"
    approximation = None
    produces_ties = False
    accounts_for_tie_cost = False
    randomized = False

    def __init__(
        self, *, max_rounds: int = 50, seed: int | None = None, kernel: str = "arrays"
    ):
        super().__init__(seed=seed)
        if kernel not in ("arrays", "reference"):
            raise ValueError(f"unknown kernel {kernel!r}; expected 'arrays' or 'reference'")
        self._max_rounds = max_rounds
        self._kernel = kernel

    # ------------------------------------------------------------------ #
    def _aggregate(
        self, rankings: Sequence[Ranking], weights: PairwiseWeights
    ) -> Ranking:
        order = self._initial_order(rankings, weights)
        cost_before = weights.cost_before()
        improved_order = self._chanas_procedure(order, cost_before)
        return Ranking.from_permutation([weights.elements[i] for i in improved_order])

    def _initial_order(
        self, rankings: Sequence[Ranking], weights: PairwiseWeights
    ) -> list[int]:
        # Vectorised Borda start off the prepared tensor; exact same float
        # sums as the bucket-walking reference, hence the same order.
        scores = borda_scores_from_weights(weights)
        ordered = sorted(weights.elements, key=lambda element: scores[element])
        return [weights.index_of[element] for element in ordered]

    # ------------------------------------------------------------------ #
    # Anytime protocol (see repro.algorithms.anytime)
    # ------------------------------------------------------------------ #
    def begin_anytime(
        self,
        dataset: Dataset | Sequence[Ranking],
        weights: PairwiseWeights | None = None,
        *,
        initial: Ranking | None = None,
    ) -> AnytimeController:
        """Start an incremental search over ``dataset``.

        Each :meth:`AnytimeController.step` advances the search by one
        Chanas round (one sort-to-fixpoint pass); the candidate sequence is
        the trajectory :meth:`aggregate` walks, so the controller's final
        best equals the batch result.  Pre-computed ``weights`` may be
        passed to skip the pairwise construction.  A warm-start ``initial``
        consensus (ties broken into a permutation) is searched first, the
        regular Borda trajectory after — the completed best is never worse
        than a cold run's.
        """
        rankings = self._validate(dataset)
        weights = resolve_weights(dataset, rankings, weights)
        return AnytimeController(
            self.name,
            self._anytime_candidates(rankings, weights, initial=initial),
            weights,
            dataset_name=dataset_label(dataset),
        )

    def _warm_order(self, initial: Ranking, weights: PairwiseWeights) -> list[int]:
        """Index permutation of a warm-start consensus (ties broken)."""
        permutation = initial.break_ties()
        return [weights.index_of[element] for element in permutation.elements()]

    def _anytime_candidates(
        self,
        rankings: Sequence[Ranking],
        weights: PairwiseWeights,
        initial: Ranking | None = None,
    ) -> Iterator[Ranking]:
        """Candidate stream: the Borda start, then each round's permutation
        (preceded by the warm-start trajectory when ``initial`` is given)."""
        cost_before = weights.cost_before()
        orders = [self._initial_order(rankings, weights)]
        if initial is not None:
            orders.insert(0, self._warm_order(initial, weights))
        for order in orders:
            for candidate in self._chanas_rounds(order, cost_before):
                yield Ranking.from_permutation(
                    [weights.elements[i] for i in candidate]
                )

    # ------------------------------------------------------------------ #
    def _chanas_procedure(
        self, order: list[int], cost_before: np.ndarray
    ) -> list[int]:
        """Alternate sort passes and reversals until no improvement.

        Returns the best permutation over the rounds (costs strictly
        decrease while rounds are kept, so the best is the last improving
        round — or the starting order when no round improves).
        """
        best: list[int] | None = None
        best_cost: int | None = None
        for candidate in self._chanas_rounds(order, cost_before):
            cost = _permutation_cost(candidate, cost_before)
            if best_cost is None or cost < best_cost:
                best, best_cost = list(candidate), cost
        assert best is not None
        return best

    def _chanas_rounds(
        self, order: list[int], cost_before: np.ndarray
    ) -> Iterator[list[int]]:
        """Yield the starting order, then the result of each Chanas round.

        A round is one sort-to-fixpoint pass; the alternation reverses the
        permutation between rounds and stops once a round no longer
        improves on the best cost so far — the same trajectory the batch
        procedure walks.
        """
        sort_pass = (
            _sort_pass_to_fixpoint_arrays
            if self._kernel == "arrays"
            else _sort_pass_to_fixpoint
        )
        current = list(order)
        best_cost = _permutation_cost(current, cost_before)
        yield list(current)
        for _ in range(self._max_rounds):
            current = sort_pass(current, cost_before)
            cost = _permutation_cost(current, cost_before)
            yield list(current)
            if cost < best_cost:
                best_cost = cost
            else:
                break
            current = list(reversed(current))


class ChanasBoth(Chanas):
    """Chanas restarted from every input ranking and the Borda order."""

    name = "ChanasBoth"

    def _anytime_candidates(
        self,
        rankings: Sequence[Ranking],
        weights: PairwiseWeights,
        initial: Ranking | None = None,
    ) -> Iterator[Ranking]:
        """Candidate stream: every start's rounds (warm-start ``initial``
        first when given, then Borda, then the inputs)."""
        cost_before = weights.cost_before()
        starts = self._starts(rankings, weights)
        if initial is not None:
            starts.insert(0, self._warm_order(initial, weights))
        for start in starts:
            for candidate in self._chanas_rounds(start, cost_before):
                yield Ranking.from_permutation(
                    [weights.elements[i] for i in candidate]
                )

    def _starts(
        self, rankings: Sequence[Ranking], weights: PairwiseWeights
    ) -> list[list[int]]:
        """Starting permutations: the Borda order, then every input (untied)."""
        starts: list[list[int]] = [self._initial_order(rankings, weights)]
        for ranking in rankings:
            permutation = ranking.break_ties()
            starts.append(
                [weights.index_of[element] for element in permutation.elements()]
            )
        return starts

    def _aggregate(
        self, rankings: Sequence[Ranking], weights: PairwiseWeights
    ) -> Ranking:
        cost_before = weights.cost_before()
        starts = self._starts(rankings, weights)
        best_ranking: Ranking | None = None
        best_score: int | None = None
        for start in starts:
            improved = self._chanas_procedure(start, cost_before)
            candidate = Ranking.from_permutation([weights.elements[i] for i in improved])
            score = generalized_kemeny_score_from_weights(candidate, weights)
            if best_score is None or score < best_score:
                best_ranking, best_score = candidate, score
        assert best_ranking is not None
        return best_ranking


# --------------------------------------------------------------------------- #
# Permutation-level helpers
# --------------------------------------------------------------------------- #
def _permutation_cost(order: Sequence[int], cost_before: np.ndarray) -> int:
    """Kendall-τ style cost of a permutation given the pairwise cost matrix."""
    indices = np.asarray(order, dtype=np.intp)
    matrix = cost_before[np.ix_(indices, indices)]
    return int(np.triu(matrix, k=1).sum())


def _sort_pass_to_fixpoint_arrays(order: list[int], cost_before: np.ndarray) -> list[int]:
    """Array twin of :func:`_sort_pass_to_fixpoint` (identical trajectories).

    The permutation lives in a dense index vector; the insertion-cost
    profile comes from two cumulative sums over the element's cost
    rows/columns (each gathered with one contiguous fancy-indexing), the
    element's removal is realised by dropping one prefix boundary from the
    full-permutation profile, and an accepted move rebuilds the vector with
    a single slice concatenation — no per-element Python list surgery.
    """
    current = np.asarray(order, dtype=np.intp)
    n = current.shape[0]
    # Row-major copies make both per-element gathers contiguous row reads.
    cost_after_rows = np.ascontiguousarray(cost_before.T)
    improved = True
    while improved:
        improved = False
        for position in range(n):
            element = current[position]
            # Gathers over the *full* permutation: the element's own cost
            # against itself is zero (zero-diagonal cost matrix), so the
            # without-element profile is recovered by dropping one prefix
            # boundary below instead of rebuilding the index vector.
            cost_if_after = cost_after_rows[element][current]   # other before element
            cost_if_before = cost_before[element][current]      # element before other
            prefix = np.concatenate(([0], np.cumsum(cost_if_after)))
            suffix = np.concatenate((np.cumsum(cost_if_before[::-1])[::-1], [0]))
            # costs[p] = insertion cost into the permutation without the
            # element, with rest[:p] before it; dropping entry position+1
            # of the full-profile sums realises the removal exactly.
            full_costs = prefix + suffix
            costs = np.concatenate((full_costs[: position + 1], full_costs[position + 2 :]))
            best_position = int(np.argmin(costs))
            if costs[best_position] < costs[position]:
                element_slice = current[position : position + 1]
                if best_position < position:
                    current = np.concatenate(
                        (
                            current[:best_position],
                            element_slice,
                            current[best_position:position],
                            current[position + 1 :],
                        )
                    )
                else:
                    current = np.concatenate(
                        (
                            current[:position],
                            current[position + 1 : best_position + 1],
                            element_slice,
                            current[best_position + 1 :],
                        )
                    )
                improved = True
    return [int(index) for index in current]


def _sort_pass_to_fixpoint(order: list[int], cost_before: np.ndarray) -> list[int]:
    """Repeat insertion-improvement passes until no move reduces the cost.

    One pass considers each element in turn and moves it to the position
    (among all insertion points) that minimises its pairwise cost with the
    rest of the permutation — the classic "sort" operation of Chanas.
    Reference kernel, retained as the ground truth for the array twin.
    """
    current = list(order)
    improved = True
    while improved:
        improved = False
        for position in range(len(current)):
            element = current[position]
            rest = current[:position] + current[position + 1:]
            costs = _insertion_costs(element, rest, cost_before)
            best_position = int(np.argmin(costs))
            if costs[best_position] < costs[position]:
                rest.insert(best_position, element)
                current = rest
                improved = True
    return current


def _insertion_costs(
    element: int, rest: list[int], cost_before: np.ndarray
) -> np.ndarray:
    """Pairwise cost of ``element`` for every insertion point into ``rest``.

    ``costs[p]`` is the cost of the pairs involving ``element`` when it is
    inserted so that ``rest[:p]`` ends up before it and ``rest[p:]`` after.
    """
    if not rest:
        return np.zeros(1, dtype=np.int64)
    others = np.asarray(rest, dtype=np.intp)
    cost_if_after = cost_before[others, element]   # other placed before element
    cost_if_before = cost_before[element, others]  # element placed before other
    prefix = np.concatenate(([0], np.cumsum(cost_if_after)))
    suffix = np.concatenate((np.cumsum(cost_if_before[::-1])[::-1], [0]))
    return prefix + suffix
