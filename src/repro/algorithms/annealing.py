"""Simulated annealing over rankings with ties.

Section 8 of the paper points out that "simulated annealing techniques are
known to produce high-quality consensus, but are time consuming" and
suggests chaining them after a cheaper algorithm.  This module implements
that annealing refiner so the chaining strategy (see
:mod:`repro.algorithms.chained`) can be reproduced and ablated.

The neighbourhood is the BioConsert edition neighbourhood (Section 3.1):
a move either inserts an element into an existing bucket or moves it alone
into a new bucket at a chosen position.  Moves are drawn uniformly at
random; a move with score delta ``d`` is accepted with probability 1 when
``d <= 0`` and ``exp(-d / T)`` otherwise, with a geometric cooling schedule
``T_{k+1} = cooling · T_k``.  The best ranking ever visited is returned, so
the algorithm can only improve on its starting point.

Complexity per move is O(number of buckets) thanks to the same per-bucket
prefix-sum trick used by BioConsert.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from ..core.kemeny import generalized_kemeny_score_from_weights
from ..core.pairwise import PairwiseWeights
from ..core.ranking import Ranking
from ..datasets.dataset import Dataset
from .anytime import AnytimeController, dataset_label, resolve_weights
from .base import RankAggregator
from .pick_a_perm import PickAPerm

__all__ = ["SimulatedAnnealing"]


class SimulatedAnnealing(RankAggregator):
    """Anytime annealing refiner over the BioConsert move neighbourhood."""

    name = "SimulatedAnnealing"
    family = "G"
    approximation = None
    produces_ties = True
    accounts_for_tie_cost = True
    randomized = True

    def __init__(
        self,
        *,
        initial_temperature: float = 2.0,
        cooling: float = 0.995,
        moves_per_temperature: int | None = None,
        min_temperature: float = 1e-3,
        max_moves: int = 50_000,
        seed: int | None = None,
    ):
        """
        Parameters
        ----------
        initial_temperature:
            Starting temperature, in units of score delta.
        cooling:
            Geometric cooling factor applied after every temperature plateau.
        moves_per_temperature:
            Number of proposed moves per plateau; defaults to the number of
            elements.
        min_temperature:
            The schedule stops once the temperature drops below this value.
        max_moves:
            Hard cap on the total number of proposed moves.
        """
        super().__init__(seed=seed)
        if not 0.0 < cooling < 1.0:
            raise ValueError(f"cooling must be in (0, 1), got {cooling}")
        if initial_temperature <= 0:
            raise ValueError("initial_temperature must be positive")
        self._initial_temperature = initial_temperature
        self._cooling = cooling
        self._moves_per_temperature = moves_per_temperature
        self._min_temperature = min_temperature
        self._max_moves = max_moves
        self._moves_proposed = 0
        self._moves_accepted = 0

    # ------------------------------------------------------------------ #
    def _aggregate(
        self, rankings: Sequence[Ranking], weights: PairwiseWeights
    ) -> Ranking:
        start = PickAPerm()._aggregate(rankings, weights)
        return self.refine_from(start, weights)

    def refine_from(self, start: Ranking, weights: PairwiseWeights) -> Ranking:
        """Refine an existing consensus; the result is never worse than ``start``."""
        candidate = start
        for candidate in self.anytime_refine(start, weights):
            pass
        return candidate

    # ------------------------------------------------------------------ #
    # Anytime protocol (see repro.algorithms.anytime)
    # ------------------------------------------------------------------ #
    def begin_anytime(
        self,
        dataset: Dataset | Sequence[Ranking],
        weights: PairwiseWeights | None = None,
        *,
        initial: Ranking | None = None,
    ) -> AnytimeController:
        """Start an incremental annealing run over ``dataset``.

        Each :meth:`AnytimeController.step` advances the schedule by one
        temperature plateau where the best ranking visited improved; the
        controller always holds the best ranking so far.  Pre-computed
        ``weights`` may be passed to skip the pairwise construction.  A
        warm-start ``initial`` consensus replaces the Pick-a-Perm start
        (the annealing walk explores from it; the best-so-far tracking
        keeps the result never worse than ``initial``).
        """
        rankings = self._validate(dataset)
        weights = resolve_weights(dataset, rankings, weights)
        return AnytimeController(
            self.name,
            self._anytime_candidates(rankings, weights, initial=initial),
            weights,
            dataset_name=dataset_label(dataset),
        )

    def _anytime_candidates(
        self,
        rankings: Sequence[Ranking],
        weights: PairwiseWeights,
        initial: Ranking | None = None,
    ) -> Iterator[Ranking]:
        """Candidate stream: the Pick-a-Perm start (or the warm-start
        ``initial`` when given), then per-plateau bests."""
        start = initial if initial is not None else PickAPerm()._aggregate(rankings, weights)
        yield from self.anytime_refine(start, weights)

    def anytime_refine(
        self, start: Ranking, weights: PairwiseWeights
    ) -> Iterator[Ranking]:
        """Incremental form of :meth:`refine_from`.

        Yields ``start`` first, then the best ranking visited so far after
        each temperature plateau *that improved it* (the geometric schedule
        walks ~1.5k plateaus; yielding each one would make the consumer
        re-score ~1.5k identical candidates).  The final item equals the
        batch :meth:`refine_from` result.
        """
        rng = self._rng()
        cost_before = weights.cost_before().astype(np.int64)
        cost_tied = weights.cost_tied().astype(np.int64)
        index_of = weights.index_of
        elements = weights.elements
        n = len(elements)
        yield start
        if n <= 1:
            return

        buckets: list[list[int]] = [
            [index_of[element] for element in bucket] for bucket in start.buckets
        ]
        current_score = generalized_kemeny_score_from_weights(start, weights)
        best_buckets = [list(bucket) for bucket in buckets]
        best_score = current_score

        temperature = self._initial_temperature
        plateau = self._moves_per_temperature or n
        self._moves_proposed = 0
        self._moves_accepted = 0
        yielded_score = best_score

        while temperature > self._min_temperature and self._moves_proposed < self._max_moves:
            for _ in range(plateau):
                if self._moves_proposed >= self._max_moves:
                    break
                self._moves_proposed += 1
                delta = self._propose_and_maybe_apply(
                    buckets, cost_before, cost_tied, temperature, rng
                )
                if delta is None:
                    continue
                self._moves_accepted += 1
                current_score += delta
                if current_score < best_score:
                    best_score = current_score
                    best_buckets = [list(bucket) for bucket in buckets]
            temperature *= self._cooling
            if best_score < yielded_score:
                yielded_score = best_score
                yield Ranking(
                    [[elements[i] for i in bucket] for bucket in best_buckets if bucket]
                )

    # ------------------------------------------------------------------ #
    def _propose_and_maybe_apply(
        self,
        buckets: list[list[int]],
        cost_before: np.ndarray,
        cost_tied: np.ndarray,
        temperature: float,
        rng: np.random.Generator,
    ) -> int | None:
        """Propose one random move; apply it if accepted and return its delta."""
        all_elements = [x for bucket in buckets for x in bucket]
        x = all_elements[int(rng.integers(0, len(all_elements)))]
        current_bucket_index = next(
            index for index, bucket in enumerate(buckets) if x in bucket
        )
        was_alone = len(buckets[current_bucket_index]) == 1

        others: list[list[int]] = []
        current_position: int | None = None
        for index, bucket in enumerate(buckets):
            remaining = [y for y in bucket if y != x] if index == current_bucket_index else bucket
            if remaining:
                others.append(remaining)
            if index == current_bucket_index:
                current_position = len(others) - (0 if was_alone else 1)
        num_buckets = len(others)
        if num_buckets == 0:
            return None

        to_x = np.empty(num_buckets, dtype=np.int64)
        from_x = np.empty(num_buckets, dtype=np.int64)
        tie_x = np.empty(num_buckets, dtype=np.int64)
        for k, bucket in enumerate(others):
            indices = np.asarray(bucket, dtype=np.intp)
            to_x[k] = cost_before[indices, x].sum()
            from_x[k] = cost_before[x, indices].sum()
            tie_x[k] = cost_tied[x, indices].sum()
        prefix_to_x = np.concatenate(([0], np.cumsum(to_x)))
        suffix_from_x = np.concatenate((np.cumsum(from_x[::-1])[::-1], [0]))
        tie_costs = prefix_to_x[:num_buckets] + tie_x + suffix_from_x[1:]
        new_costs = prefix_to_x + suffix_from_x

        current_cost = int(
            new_costs[current_position] if was_alone else tie_costs[current_position]
        )

        # Draw a random target placement: tie with an existing bucket or a new
        # bucket at a random insertion position.
        if rng.random() < 0.5:
            target = int(rng.integers(0, num_buckets))
            proposed_cost = int(tie_costs[target])
            apply = lambda: others[target].append(x)  # noqa: E731 - tiny closure
        else:
            position = int(rng.integers(0, num_buckets + 1))
            proposed_cost = int(new_costs[position])
            apply = lambda: others.insert(position, [x])  # noqa: E731

        delta = proposed_cost - current_cost
        if delta > 0 and rng.random() >= np.exp(-delta / temperature):
            return None
        apply()
        buckets[:] = others
        return delta

    def _last_details(self) -> dict[str, object]:
        return {
            "moves_proposed": self._moves_proposed,
            "moves_accepted": self._moves_accepted,
        }
