"""MC4 (Dwork, Kumar, Naor & Sivakumar 2001).

Hybrid positional algorithm (Section 3.3).  The aggregation problem is cast
as a Markov chain whose states are the elements: the transition probability
from element ``e1`` to element ``e2`` is ``1/n`` when a majority of the
input rankings prefers ``e2`` to ``e1`` (i.e. ranks ``e2`` before ``e1``);
the remaining probability mass stays on ``e1``.  The score of each element
is its mass in the stationary distribution; elements preferred by many
majorities accumulate mass and are ranked first.

The chain may be reducible, so (as is standard for MC4 and as done for
PageRank) a small teleportation probability makes it ergodic; the stationary
distribution is computed by power iteration.

Because the chain only models strict majority preferences, MC4 takes
rankings with ties as input but does not account for the cost of (un)tying
(Table 1: "Can produce ties: yes / Untying cost: no").  Elements whose
stationary masses are equal up to the convergence tolerance are tied in the
output.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.pairwise import PairwiseWeights
from ..core.ranking import Ranking
from .base import RankAggregator

__all__ = ["MC4"]


class MC4(RankAggregator):
    """Markov-chain rank aggregation (MC4 variant of Dwork et al.)."""

    name = "MC4"
    family = "P"
    approximation = None
    produces_ties = True
    accounts_for_tie_cost = False
    randomized = False

    def __init__(
        self,
        *,
        damping: float = 0.95,
        tolerance: float = 1e-10,
        max_iterations: int = 10_000,
        tie_tolerance: float = 1e-9,
        seed: int | None = None,
    ):
        """
        Parameters
        ----------
        damping:
            Probability of following the majority-preference chain; the
            remaining ``1 - damping`` teleports uniformly, guaranteeing
            ergodicity.
        tolerance:
            L1 convergence threshold of the power iteration.
        max_iterations:
            Hard cap on power-iteration steps.
        tie_tolerance:
            Elements whose stationary masses differ by at most this amount
            are tied in the consensus.
        """
        super().__init__(seed=seed)
        if not 0.0 < damping <= 1.0:
            raise ValueError(f"damping must be in (0, 1], got {damping}")
        self._damping = damping
        self._tolerance = tolerance
        self._max_iterations = max_iterations
        self._tie_tolerance = tie_tolerance
        self._iterations_used = 0

    def _aggregate(
        self, rankings: Sequence[Ranking], weights: PairwiseWeights
    ) -> Ranking:
        n = weights.num_elements
        if n == 1:
            return Ranking([list(weights.elements)])
        before = weights.before_matrix
        # transition[i, j] = 1/n when a strict majority of rankings prefers j
        # to i (ranks j before i); the diagonal absorbs the remaining mass.
        majority_prefers_j = (before.T > before).astype(float)
        transition = majority_prefers_j / n
        row_mass = transition.sum(axis=1)
        transition[np.arange(n), np.arange(n)] += 1.0 - row_mass

        # Ergodic fix: damping towards the uniform distribution.
        uniform = np.full((n, n), 1.0 / n)
        chain = self._damping * transition + (1.0 - self._damping) * uniform

        distribution = np.full(n, 1.0 / n)
        self._iterations_used = 0
        for iteration in range(self._max_iterations):
            updated = distribution @ chain
            delta = np.abs(updated - distribution).sum()
            distribution = updated
            self._iterations_used = iteration + 1
            if delta < self._tolerance:
                break

        # Elements with the largest stationary mass are the most preferred:
        # rank by decreasing mass, tying near-equal masses.
        scores = {
            element: float(distribution[i]) for i, element in enumerate(weights.elements)
        }
        return Ranking.from_scores(scores, reverse=True, tie_tolerance=self._tie_tolerance)

    def _last_details(self) -> dict[str, object]:
        return {"power_iterations": self._iterations_used}
