"""CopelandMethod (Copeland 1951), adapted to rankings with ties.

Positional algorithm (family [P], Section 3.3).  The Copeland score of an
element is the sum, over the input rankings, of the number of elements
placed strictly *after* it; elements are sorted by decreasing score.

As with BordaCount, ties adaptation follows the general methodology of
Section 4.1.3: the positional formulation directly handles rankings with
ties as input, elements with exactly equal scores are tied in the output,
but the method cannot account for the cost of (un)tying elements.

An alternative, equivalent-in-spirit "pairwise" variant is also provided
(``pairwise_victories=True``): the score of an element is the number of
opponents it beats in a majority contest — the textbook Copeland rule.  The
position-based variant is the default because it is the one the paper
describes (sum of the number of elements placed after).

Complexity: O(n·m + n log n) for the positional variant; O(n²) when using
pairwise victories.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.pairwise import PairwiseWeights
from ..core.ranking import Element, Ranking
from .base import RankAggregator

__all__ = ["CopelandMethod", "copeland_scores"]


def copeland_scores(rankings: Sequence[Ranking]) -> dict[Element, float]:
    """Copeland score: sum over rankings of the number of elements placed after."""
    scores: dict[Element, float] = {}
    for ranking in rankings:
        total = len(ranking)
        elements_before = 0
        for bucket in ranking.buckets:
            elements_after = total - elements_before - len(bucket)
            for element in bucket:
                scores[element] = scores.get(element, 0.0) + elements_after
            elements_before += len(bucket)
    return scores


def copeland_pairwise_scores(weights: PairwiseWeights) -> dict[Element, float]:
    """Classic Copeland rule: +1 per opponent beaten by majority, +0.5 per draw."""
    before = weights.before_matrix
    wins = (before > before.T).astype(float)
    draws = (before == before.T).astype(float)
    np.fill_diagonal(draws, 0.0)
    totals = wins.sum(axis=1) + 0.5 * draws.sum(axis=1)
    return {element: float(totals[i]) for i, element in enumerate(weights.elements)}


class CopelandMethod(RankAggregator):
    """Sort elements by the number of elements ranked after them (descending)."""

    name = "CopelandMethod"
    family = "P"
    approximation = None
    produces_ties = True
    accounts_for_tie_cost = False
    randomized = False

    def __init__(
        self,
        *,
        tie_equal_scores: bool = True,
        pairwise_victories: bool = False,
        seed: int | None = None,
    ):
        """
        Parameters
        ----------
        tie_equal_scores:
            Tie elements with exactly equal scores (default) or break ties to
            output a permutation.
        pairwise_victories:
            Use the classic majority-victory Copeland rule instead of the
            positional score described in the paper.
        """
        super().__init__(seed=seed)
        self._tie_equal_scores = tie_equal_scores
        self._pairwise_victories = pairwise_victories

    def _aggregate(
        self, rankings: Sequence[Ranking], weights: PairwiseWeights
    ) -> Ranking:
        if self._pairwise_victories:
            scores = copeland_pairwise_scores(weights)
        else:
            scores = copeland_scores(rankings)
        consensus = Ranking.from_scores(scores, reverse=True)
        if self._tie_equal_scores:
            return consensus
        return consensus.break_ties()
