"""CopelandMethod (Copeland 1951), adapted to rankings with ties.

Positional algorithm (family [P], Section 3.3).  The Copeland score of an
element is the sum, over the input rankings, of the number of elements
placed strictly *after* it; elements are sorted by decreasing score.

As with BordaCount, ties adaptation follows the general methodology of
Section 4.1.3: the positional formulation directly handles rankings with
ties as input, elements with exactly equal scores are tied in the output,
but the method cannot account for the cost of (un)tying elements.

An alternative, equivalent-in-spirit "pairwise" variant is also provided
(``pairwise_victories=True``): the score of an element is the number of
opponents it beats in a majority contest — the textbook Copeland rule.  The
position-based variant is the default because it is the one the paper
describes (sum of the number of elements placed after).

Two kernels compute the positional scores: ``kernel="arrays"`` (default)
reads the elements-after counts off the dataset's dense position tensor
(:func:`repro.core.arrays.positional_counts`), ``kernel="reference"`` walks
the bucket lists (the seed implementation).  The integer sums are
identical, so both kernels produce the same consensus.

Complexity: O(n·m + n log n) for the positional variant; O(n²) when using
pairwise victories.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.arrays import positional_counts
from ..core.pairwise import PairwiseWeights
from ..core.ranking import Element, Ranking
from .base import RankAggregator

__all__ = ["CopelandMethod", "copeland_scores", "copeland_scores_from_weights"]


def copeland_scores(rankings: Sequence[Ranking]) -> dict[Element, float]:
    """Copeland score: sum over rankings of the number of elements placed after."""
    scores: dict[Element, float] = {}
    for ranking in rankings:
        total = len(ranking)
        elements_before = 0
        for bucket in ranking.buckets:
            elements_after = total - elements_before - len(bucket)
            for element in bucket:
                scores[element] = scores.get(element, 0.0) + elements_after
            elements_before += len(bucket)
    return scores


def copeland_scores_from_weights(weights: PairwiseWeights) -> dict[Element, float]:
    """Copeland positional scores computed from the prepared position tensor.

    Vectorised twin of :func:`copeland_scores`: the elements-after counts
    are ``n − bucket_size − elements_before`` per (ranking, element) cell,
    both read from one :func:`~repro.core.arrays.positional_counts` pass.
    The integer sums equal the reference exactly.

    Parameters
    ----------
    weights:
        Prepared pairwise weights of the dataset (carrying the tensor).
    """
    before_counts, bucket_sizes = positional_counts(weights.positions)
    after_counts = weights.num_elements - bucket_sizes - before_counts
    totals = after_counts.sum(axis=0)
    return {
        element: float(totals[index])
        for index, element in enumerate(weights.elements)
    }


def copeland_pairwise_scores(weights: PairwiseWeights) -> dict[Element, float]:
    """Classic Copeland rule: +1 per opponent beaten by majority, +0.5 per draw."""
    before = weights.before_matrix
    wins = (before > before.T).astype(float)
    draws = (before == before.T).astype(float)
    np.fill_diagonal(draws, 0.0)
    totals = wins.sum(axis=1) + 0.5 * draws.sum(axis=1)
    return {element: float(totals[i]) for i, element in enumerate(weights.elements)}


class CopelandMethod(RankAggregator):
    """Sort elements by the number of elements ranked after them (descending)."""

    name = "CopelandMethod"
    family = "P"
    approximation = None
    produces_ties = True
    accounts_for_tie_cost = False
    randomized = False

    def __init__(
        self,
        *,
        tie_equal_scores: bool = True,
        pairwise_victories: bool = False,
        seed: int | None = None,
        kernel: str = "arrays",
    ):
        """
        Parameters
        ----------
        tie_equal_scores:
            Tie elements with exactly equal scores (default) or break ties to
            output a permutation.
        pairwise_victories:
            Use the classic majority-victory Copeland rule instead of the
            positional score described in the paper.
        kernel:
            ``"arrays"`` (default) scores from the prepared position
            tensor; ``"reference"`` walks the bucket lists (seed path).
            Both produce identical consensus rankings.
        """
        super().__init__(seed=seed)
        if kernel not in ("arrays", "reference"):
            raise ValueError(f"unknown kernel {kernel!r}; expected 'arrays' or 'reference'")
        self._tie_equal_scores = tie_equal_scores
        self._pairwise_victories = pairwise_victories
        self._kernel = kernel

    def _aggregate(
        self, rankings: Sequence[Ranking], weights: PairwiseWeights
    ) -> Ranking:
        if self._pairwise_victories:
            scores = copeland_pairwise_scores(weights)
        elif self._kernel == "arrays":
            scores = copeland_scores_from_weights(weights)
        else:
            scores = copeland_scores(rankings)
        consensus = Ranking.from_scores(scores, reverse=True)
        if self._tie_equal_scores:
            return consensus
        return consensus.break_ties()
