"""Pick-a-Perm (Ailon, Charikar & Newman 2008).

Naive Kendall-τ based approach (family [K], Section 3.2): return one of the
input rankings as the consensus.  Picking an input uniformly at random is a
2-approximation in expectation; the de-randomized variant studied in the
paper ([31]) returns the input ranking with the *minimal* generalized Kemeny
score, which is what the experiments use (and what this implementation does
by default).

The algorithm trivially "produces ties" in the sense that its output keeps
whatever ties the chosen input ranking contains (Table 1).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.kemeny import (
    generalized_kemeny_score_from_weights,
    generalized_kemeny_scores_of_stack,
)
from ..core.pairwise import PairwiseWeights
from ..core.ranking import Ranking
from .base import RankAggregator

__all__ = ["PickAPerm"]


class PickAPerm(RankAggregator):
    """Return an input ranking — randomly, or the best one (de-randomized)."""

    name = "Pick-a-Perm"
    family = "K"
    approximation = "2"
    produces_ties = True
    accounts_for_tie_cost = False
    randomized = True

    def __init__(
        self,
        *,
        derandomized: bool = True,
        seed: int | None = None,
        kernel: str = "arrays",
    ):
        """
        Parameters
        ----------
        derandomized:
            When ``True`` (default, the variant evaluated in the paper),
            return the input ranking with the smallest generalized Kemeny
            score.  When ``False``, return an input ranking chosen uniformly
            at random.
        kernel:
            ``"arrays"`` (default) scores every input at once with the
            batched stack scorer over the prepared position tensor;
            ``"reference"`` scores one input at a time through the
            per-candidate mask path.  Identical scores, identical
            (first-minimum) choice.
        """
        super().__init__(seed=seed)
        if kernel not in ("arrays", "reference"):
            raise ValueError(f"unknown kernel {kernel!r}; expected 'arrays' or 'reference'")
        self._derandomized = derandomized
        self._kernel = kernel
        self._chosen_index: int | None = None

    def _aggregate(
        self, rankings: Sequence[Ranking], weights: PairwiseWeights
    ) -> Ranking:
        if self._derandomized:
            if self._kernel == "arrays":
                # The candidate pool *is* the input stack the plan already
                # encodes: one batched pass scores every row.
                scores = generalized_kemeny_scores_of_stack(
                    weights.positions, weights
                ).tolist()
            else:
                scores = [
                    generalized_kemeny_score_from_weights(candidate, weights)
                    for candidate in rankings
                ]
            best_index = min(range(len(rankings)), key=scores.__getitem__)
            self._chosen_index = best_index
            return rankings[best_index]
        index = int(self._rng().integers(0, len(rankings)))
        self._chosen_index = index
        return rankings[index]

    def _last_details(self) -> dict[str, object]:
        return {"chosen_input_index": self._chosen_index}
