"""MEDRank (Fagin, Kumar & Sivakumar 2003), adapted to rankings with ties.

Positional algorithm (family [P], Section 3.3) designed for Top-k
aggregation without any sorting step: the input rankings are read *in
parallel, bucket by bucket*; as soon as an element has been seen in at least
``h·m`` rankings (``h`` is the threshold, ``m`` the number of rankings), it
is appended to the consensus.

Ties adaptation (Section 4.1.3): reading a bucket delivers all of its
elements at once, and all the elements that cross the threshold during the
same reading round are placed in the same consensus bucket.  The complexity
is unchanged: O(n·m).

The paper evaluates MEDRank with thresholds 0.5 (default, best in 76% of
the synthetic datasets) and 0.7 (Section 7.1.1).

Two kernels implement the parallel reading: ``kernel="arrays"`` (default)
observes that an element crosses the threshold exactly at the ``q``-th
smallest of its per-ranking bucket positions (``q`` the smallest count
satisfying the threshold), so the emission rounds of *all* elements come
from one partial sort of the dataset's position tensor; ``kernel=
"reference"`` is the original round-by-round reading loop.  Both group
elements by the same emission round and produce identical consensus
rankings.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from ..core.pairwise import PairwiseWeights
from ..core.ranking import Element, Ranking
from .base import RankAggregator

__all__ = ["MEDRank"]


class MEDRank(RankAggregator):
    """Threshold-based parallel reading of the input rankings."""

    name = "MEDRank(0.5)"
    family = "P"
    approximation = None
    produces_ties = True
    accounts_for_tie_cost = False
    randomized = False

    def __init__(
        self, threshold: float = 0.5, *, seed: int | None = None, kernel: str = "arrays"
    ):
        """
        Parameters
        ----------
        threshold:
            Fraction ``h`` of the rankings that must have delivered an
            element before it is appended to the consensus; must lie in the
            open interval (0, 1].  The paper uses 0.5 and 0.7.
        kernel:
            ``"arrays"`` (default) computes every element's emission round
            as an order statistic of the position tensor; ``"reference"``
            replays the round-by-round reading.  Identical outputs.
        """
        super().__init__(seed=seed)
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        if kernel not in ("arrays", "reference"):
            raise ValueError(f"unknown kernel {kernel!r}; expected 'arrays' or 'reference'")
        self._threshold = threshold
        self._kernel = kernel
        self.name = f"MEDRank({threshold:g})"

    def _aggregate(
        self, rankings: Sequence[Ranking], weights: PairwiseWeights
    ) -> Ranking:
        if self._kernel == "arrays":
            return self._aggregate_arrays(weights)
        return self._aggregate_reference(rankings)

    def _aggregate_arrays(self, weights: PairwiseWeights) -> Ranking:
        """Order-statistic kernel over the prepared position tensor.

        An element's seen-count after reading round ``t`` is the number of
        rankings placing it in a bucket of index ≤ ``t``; it first reaches
        the (possibly fractional) requirement ``h·m`` at the ``q``-th
        smallest of its positions, ``q = ceil(h·m)`` — the same float
        comparison the reference loop performs.  Elements sharing an
        emission round share a consensus bucket; ``weights.elements`` is
        already in the reference's tie-breaking order (type name, repr).
        """
        positions = weights.positions
        m, n = positions.shape
        required = self._threshold * m
        q = int(math.ceil(required))
        if q > m:
            # No element can ever cross the threshold: everything lands in
            # the final "unification" bucket (defensive; unreachable for
            # thresholds in (0, 1] on complete datasets).
            return Ranking([list(weights.elements)])
        emission_rounds = np.partition(positions, q - 1, axis=0)[q - 1]
        buckets: list[list[Element]] = []
        for round_index in np.unique(emission_rounds):
            members = np.flatnonzero(emission_rounds == round_index)
            buckets.append([weights.elements[i] for i in members])
        return Ranking(buckets)

    def _aggregate_reference(self, rankings: Sequence[Ranking]) -> Ranking:
        """The seed round-by-round reading loop (retained as ground truth)."""
        num_rankings = len(rankings)
        required = self._threshold * num_rankings
        seen_counts: dict[Element, int] = {}
        emitted: set[Element] = set()
        consensus_buckets: list[list[Element]] = []

        max_rounds = max(ranking.num_buckets for ranking in rankings)
        for round_index in range(max_rounds):
            newly_emitted: list[Element] = []
            for ranking in rankings:
                if round_index >= ranking.num_buckets:
                    continue
                for element in ranking.buckets[round_index]:
                    seen_counts[element] = seen_counts.get(element, 0) + 1
                    if element not in emitted and seen_counts[element] >= required:
                        emitted.add(element)
                        newly_emitted.append(element)
            if newly_emitted:
                consensus_buckets.append(sorted(newly_emitted, key=_element_key))

        # Elements that never reach the threshold (possible when the
        # threshold is larger than the fraction of rankings containing the
        # element's bucket rounds) are appended in a final bucket, mirroring
        # the unification convention.
        remaining = sorted(
            (element for element in rankings[0].domain if element not in emitted),
            key=_element_key,
        )
        if remaining:
            consensus_buckets.append(remaining)
        return Ranking(consensus_buckets)


def _element_key(element: Element) -> tuple[str, str]:
    return (type(element).__name__, repr(element))
