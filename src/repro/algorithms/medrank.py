"""MEDRank (Fagin, Kumar & Sivakumar 2003), adapted to rankings with ties.

Positional algorithm (family [P], Section 3.3) designed for Top-k
aggregation without any sorting step: the input rankings are read *in
parallel, bucket by bucket*; as soon as an element has been seen in at least
``h·m`` rankings (``h`` is the threshold, ``m`` the number of rankings), it
is appended to the consensus.

Ties adaptation (Section 4.1.3): reading a bucket delivers all of its
elements at once, and all the elements that cross the threshold during the
same reading round are placed in the same consensus bucket.  The complexity
is unchanged: O(n·m).

The paper evaluates MEDRank with thresholds 0.5 (default, best in 76% of
the synthetic datasets) and 0.7 (Section 7.1.1).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.pairwise import PairwiseWeights
from ..core.ranking import Element, Ranking
from .base import RankAggregator

__all__ = ["MEDRank"]


class MEDRank(RankAggregator):
    """Threshold-based parallel reading of the input rankings."""

    name = "MEDRank(0.5)"
    family = "P"
    approximation = None
    produces_ties = True
    accounts_for_tie_cost = False
    randomized = False

    def __init__(self, threshold: float = 0.5, *, seed: int | None = None):
        """
        Parameters
        ----------
        threshold:
            Fraction ``h`` of the rankings that must have delivered an
            element before it is appended to the consensus; must lie in the
            open interval (0, 1].  The paper uses 0.5 and 0.7.
        """
        super().__init__(seed=seed)
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self._threshold = threshold
        self.name = f"MEDRank({threshold:g})"

    def _aggregate(
        self, rankings: Sequence[Ranking], weights: PairwiseWeights
    ) -> Ranking:
        num_rankings = len(rankings)
        required = self._threshold * num_rankings
        seen_counts: dict[Element, int] = {}
        emitted: set[Element] = set()
        consensus_buckets: list[list[Element]] = []

        max_rounds = max(ranking.num_buckets for ranking in rankings)
        for round_index in range(max_rounds):
            newly_emitted: list[Element] = []
            for ranking in rankings:
                if round_index >= ranking.num_buckets:
                    continue
                for element in ranking.buckets[round_index]:
                    seen_counts[element] = seen_counts.get(element, 0) + 1
                    if element not in emitted and seen_counts[element] >= required:
                        emitted.add(element)
                        newly_emitted.append(element)
            if newly_emitted:
                consensus_buckets.append(sorted(newly_emitted, key=_element_key))

        # Elements that never reach the threshold (possible when the
        # threshold is larger than the fraction of rankings containing the
        # element's bucket rounds) are appended in a final bucket, mirroring
        # the unification convention.
        remaining = sorted(
            (element for element in rankings[0].domain if element not in emitted),
            key=_element_key,
        )
        if remaining:
            consensus_buckets.append(remaining)
        return Ranking(consensus_buckets)


def _element_key(element: Element) -> tuple[str, str]:
    return (type(element).__name__, repr(element))
