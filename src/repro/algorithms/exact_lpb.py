"""Exact consensus via the paper's linear pseudo-boolean (LPB) program.

Section 4.2 of the paper introduces the first exact algorithm for rank
aggregation *with ties*: the problem is expressed as a linear program over
pseudo-boolean variables

* ``x_{a<b}`` — 1 when ``a`` is ranked strictly before ``b`` in the
  consensus,
* ``x_{a=b}`` — 1 when ``a`` and ``b`` share a bucket,

with the objective (the generalized Kendall-τ disagreement count)

    Σ_{a,b} ( w_{b≤a}·x_{a<b} + w_{a≤b}·x_{b<a} + (w_{a<b}+w_{a>b})·x_{a=b} )

and three families of constraints:

1. every pair is in exactly one relation:  ``x_{a<b} + x_{b<a} + x_{a=b} = 1``;
2. order transitivity:                     ``x_{a<c} - x_{a<b} - x_{b<c} ≥ -1``;
3. bucket transitivity ("tied-with" is an equivalence):
   ``2x_{a<b} + 2x_{b<a} + 2x_{b<c} + 2x_{c<b} - x_{a<c} - x_{c<a} ≥ 0``.

The original study solved the program with CPLEX; this reproduction uses
the HiGHS solver shipped with SciPy (``scipy.optimize.milp``), which is an
exact MILP solver — only the backend differs (see DESIGN.md).  The size of
the program is Θ(n²) variables and Θ(n³) constraints, so exact solutions
are only practical for moderate ``n`` (the paper reports n ≤ 60 with CPLEX
and a two-hour budget; expect smaller values here).

The module also exposes the program builder itself
(:func:`build_lpb_program`) so that the LP relaxation (Ailon 3/2) can reuse
exactly the same constraint matrix.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from ..core.exceptions import AlgorithmNotApplicableError, SolverUnavailableError
from ..core.pairwise import PairwiseWeights
from ..core.ranking import Ranking
from .base import RankAggregator

__all__ = ["ExactAlgorithm", "LPBProgram", "build_lpb_program", "ranking_from_before_tied"]


@dataclass
class LPBProgram:
    """The LPB program of Section 4.2 in matrix form.

    Variables are laid out pair-major: for the ``p``-th unordered pair
    ``(i, j)`` (``i < j`` in element-index order), columns ``3p``, ``3p+1``
    and ``3p+2`` hold ``x_{i<j}``, ``x_{j<i}`` and ``x_{i=j}`` respectively.
    """

    objective: np.ndarray
    equality: sparse.csr_matrix
    equality_rhs: np.ndarray
    inequality: sparse.csr_matrix
    inequality_lower: np.ndarray
    pair_index: dict[tuple[int, int], int]
    num_elements: int

    @property
    def num_variables(self) -> int:
        return self.objective.shape[0]


def build_lpb_program(weights: PairwiseWeights) -> LPBProgram:
    """Build the objective and constraint matrices of the LPB program."""
    n = weights.num_elements
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    pair_index = {pair: position for position, pair in enumerate(pairs)}
    num_variables = 3 * len(pairs)

    before = weights.before_matrix
    tied = weights.tied_matrix

    # Objective: cost of each relation for each pair.
    objective = np.zeros(num_variables, dtype=float)
    for (i, j), position in pair_index.items():
        base = 3 * position
        objective[base + 0] = before[j, i] + tied[i, j]     # i before j
        objective[base + 1] = before[i, j] + tied[i, j]     # j before i
        objective[base + 2] = before[i, j] + before[j, i]   # i tied j

    # Constraint (1): exactly one relation per pair.
    eq_rows = []
    eq_cols = []
    eq_data = []
    for (i, j), position in pair_index.items():
        base = 3 * position
        row = position
        for offset in range(3):
            eq_rows.append(row)
            eq_cols.append(base + offset)
            eq_data.append(1.0)
    equality = sparse.csr_matrix(
        (eq_data, (eq_rows, eq_cols)), shape=(len(pairs), num_variables)
    )
    equality_rhs = np.ones(len(pairs))

    def var_before(a: int, b: int) -> int:
        """Column of the variable 'a strictly before b'."""
        if a < b:
            return 3 * pair_index[(a, b)] + 0
        return 3 * pair_index[(b, a)] + 1

    ineq_rows: list[int] = []
    ineq_cols: list[int] = []
    ineq_data: list[float] = []
    lower_bounds: list[float] = []
    row = 0

    # Constraint (2): order transitivity for every ordered triple (a, b, c).
    for a in range(n):
        for b in range(n):
            if b == a:
                continue
            for c in range(n):
                if c == a or c == b:
                    continue
                ineq_rows.extend([row, row, row])
                ineq_cols.extend([var_before(a, c), var_before(a, b), var_before(b, c)])
                ineq_data.extend([1.0, -1.0, -1.0])
                lower_bounds.append(-1.0)
                row += 1

    # Constraint (3): bucket transitivity.  One constraint per middle element
    # b and unordered pair {a, c}.
    for b in range(n):
        for a in range(n):
            if a == b:
                continue
            for c in range(a + 1, n):
                if c == b:
                    continue
                ineq_rows.extend([row] * 6)
                ineq_cols.extend(
                    [
                        var_before(a, b),
                        var_before(b, a),
                        var_before(b, c),
                        var_before(c, b),
                        var_before(a, c),
                        var_before(c, a),
                    ]
                )
                ineq_data.extend([2.0, 2.0, 2.0, 2.0, -1.0, -1.0])
                lower_bounds.append(0.0)
                row += 1

    inequality = sparse.csr_matrix(
        (ineq_data, (ineq_rows, ineq_cols)), shape=(row, num_variables)
    )
    inequality_lower = np.asarray(lower_bounds)

    return LPBProgram(
        objective=objective,
        equality=equality,
        equality_rhs=equality_rhs,
        inequality=inequality,
        inequality_lower=inequality_lower,
        pair_index=pair_index,
        num_elements=n,
    )


def ranking_from_before_tied(
    before: np.ndarray, tied: np.ndarray, weights: PairwiseWeights
) -> Ranking:
    """Rebuild a ranking with ties from boolean before/tied relations.

    ``before[i, j]`` is truthy when element ``i`` is strictly before ``j``;
    ``tied`` is the symmetric tie relation.  For a consistent bucket order
    the number of elements strictly before an element identifies its bucket.
    """
    n = weights.num_elements
    counts = np.asarray(before, dtype=bool).sum(axis=0)
    positions = {weights.elements[i]: int(counts[i]) for i in range(n)}
    return Ranking.from_positions(positions)


class ExactAlgorithm(RankAggregator):
    """Optimal consensus ranking with ties via the LPB integer program."""

    name = "ExactAlgorithm"
    family = "G"
    approximation = "exact"
    produces_ties = True
    accounts_for_tie_cost = True
    randomized = False

    def __init__(
        self,
        *,
        time_limit: float | None = None,
        max_elements: int | None = 60,
        seed: int | None = None,
    ):
        """
        Parameters
        ----------
        time_limit:
            Optional wall-clock limit (seconds) handed to the MILP solver.
            When the limit is hit the best incumbent found is returned and
            ``details["proved_optimal"]`` is ``False`` — mirroring the
            paper's two-hour cap protocol.
        max_elements:
            Refuse datasets with more elements than this (the program has
            Θ(n³) constraints; the paper computes exact solutions up to
            n = 60).  Pass ``None`` to remove the guard.
        """
        super().__init__(seed=seed)
        self._time_limit = time_limit
        self._max_elements = max_elements
        self._proved_optimal = False
        self._objective_value: float | None = None

    def _aggregate(
        self, rankings: Sequence[Ranking], weights: PairwiseWeights
    ) -> Ranking:
        n = weights.num_elements
        if n == 1:
            self._proved_optimal = True
            return Ranking([list(weights.elements)])
        if self._max_elements is not None and n > self._max_elements:
            raise AlgorithmNotApplicableError(
                f"the exact LPB program is limited to {self._max_elements} elements "
                f"(got {n}); raise max_elements explicitly to force the attempt"
            )
        program = build_lpb_program(weights)

        constraints = [
            LinearConstraint(program.equality, program.equality_rhs, program.equality_rhs),
            LinearConstraint(
                program.inequality, program.inequality_lower, np.inf
            ),
        ]
        options: dict[str, object] = {}
        if self._time_limit is not None:
            options["time_limit"] = float(self._time_limit)
        result = milp(
            c=program.objective,
            constraints=constraints,
            integrality=np.ones(program.num_variables),
            bounds=Bounds(0.0, 1.0),
            options=options,
        )
        if result.x is None:
            raise SolverUnavailableError(
                f"MILP solver failed to produce a solution (status={result.status}, "
                f"message={result.message!r})"
            )
        self._proved_optimal = bool(result.status == 0)
        self._objective_value = float(result.fun)

        values = np.asarray(result.x)
        before = np.zeros((n, n), dtype=bool)
        tied = np.zeros((n, n), dtype=bool)
        for (i, j), position in program.pair_index.items():
            base = 3 * position
            x_before, x_after, x_tied = values[base: base + 3]
            choice = int(np.argmax([x_before, x_after, x_tied]))
            if choice == 0:
                before[i, j] = True
            elif choice == 1:
                before[j, i] = True
            else:
                tied[i, j] = tied[j, i] = True
        return ranking_from_before_tied(before, tied, weights)

    def _last_details(self) -> dict[str, object]:
        return {
            "proved_optimal": self._proved_optimal,
            "objective_value": self._objective_value,
        }
