"""RepeatChoice (Ailon 2010), with the ties-preserving adaptation.

Kendall-τ based 2-approximation (family [K], Section 3.2), called *Ailon2*
in [12].  Starting from one input ranking, its buckets are refined by
breaking them according to the order of the elements in the other input
rankings, taken one after the other in random order, until every input
ranking has been used.

* In the original algorithm the remaining ties are then broken arbitrarily,
  producing a permutation.
* The ties adaptation of Section 4.1.2 simply skips that last step, so the
  pairs of elements tied in *every* input ranking remain tied in the output.

The paper evaluates the randomized algorithm through many runs and keeps the
best solution ("RepeatChoiceMin"); the :class:`RepeatChoice` class exposes a
``num_repeats`` parameter for that purpose and the registry provides both
configurations.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.kemeny import generalized_kemeny_score_from_weights
from ..core.pairwise import PairwiseWeights
from ..core.ranking import Element, Ranking
from .base import RankAggregator

__all__ = ["RepeatChoice"]


class RepeatChoice(RankAggregator):
    """Refine a start ranking with the orders of the other input rankings."""

    name = "RepeatChoice"
    family = "K"
    approximation = "2"
    produces_ties = True
    accounts_for_tie_cost = False
    randomized = True

    def __init__(
        self,
        *,
        keep_ties: bool = True,
        num_repeats: int = 1,
        seed: int | None = None,
    ):
        """
        Parameters
        ----------
        keep_ties:
            When ``True`` (default), remaining ties are kept (the adaptation
            of Section 4.1.2); when ``False``, they are broken arbitrarily
            and the output is a permutation, as in the original algorithm.
        num_repeats:
            Number of independent randomized runs; the best consensus (by
            generalized Kemeny score) is returned.  ``num_repeats > 1``
            corresponds to the "RepeatChoiceMin" rows of the paper's tables.
        """
        super().__init__(seed=seed)
        if num_repeats < 1:
            raise ValueError(f"num_repeats must be >= 1, got {num_repeats}")
        self._keep_ties = keep_ties
        self._num_repeats = num_repeats
        if num_repeats > 1:
            self.name = "RepeatChoiceMin"

    def _aggregate(
        self, rankings: Sequence[Ranking], weights: PairwiseWeights
    ) -> Ranking:
        rng = self._rng()
        best: Ranking | None = None
        best_score: int | None = None
        for _ in range(self._num_repeats):
            candidate = self._single_run(rankings, rng)
            score = generalized_kemeny_score_from_weights(candidate, weights)
            if best_score is None or score < best_score:
                best = candidate
                best_score = score
        assert best is not None
        return best

    def _single_run(
        self, rankings: Sequence[Ranking], rng: np.random.Generator
    ) -> Ranking:
        order = rng.permutation(len(rankings))
        start = rankings[order[0]]
        # A consensus bucket is represented by the list of refinement keys of
        # its elements: the tuple of positions in the rankings used so far.
        keys: dict[Element, tuple[int, ...]] = {
            element: (start.position_of(element),) for element in start.domain
        }
        for ranking_index in order[1:]:
            refiner = rankings[ranking_index]
            keys = {
                element: key + (refiner.position_of(element),)
                for element, key in keys.items()
            }
        buckets: dict[tuple[int, ...], list[Element]] = {}
        for element, key in keys.items():
            buckets.setdefault(key, []).append(element)
        ordered_keys = sorted(buckets)
        consensus = Ranking([buckets[key] for key in ordered_keys])
        if self._keep_ties:
            return consensus
        return consensus.break_ties()
