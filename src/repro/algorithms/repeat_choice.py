"""RepeatChoice (Ailon 2010), with the ties-preserving adaptation.

Kendall-τ based 2-approximation (family [K], Section 3.2), called *Ailon2*
in [12].  Starting from one input ranking, its buckets are refined by
breaking them according to the order of the elements in the other input
rankings, taken one after the other in random order, until every input
ranking has been used.

* In the original algorithm the remaining ties are then broken arbitrarily,
  producing a permutation.
* The ties adaptation of Section 4.1.2 simply skips that last step, so the
  pairs of elements tied in *every* input ranking remain tied in the output.

The paper evaluates the randomized algorithm through many runs and keeps the
best solution ("RepeatChoiceMin"); the :class:`RepeatChoice` class exposes a
``num_repeats`` parameter for that purpose and the registry provides both
configurations.

Two kernels implement a run: ``kernel="arrays"`` (default) observes that
the successive refinements amount to ordering the elements by the
lexicographic tuple of their positions in the (randomly ordered) input
rankings, which is one ``np.lexsort`` over the dataset's position tensor;
``kernel="reference"`` replays the original per-element dictionary
refinement.  Both consume the seeded generator identically (one
permutation per run) and group exactly the same elements, so consensus and
scores are equal run for run.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.kemeny import (
    generalized_kemeny_score_from_weights,
    generalized_kemeny_scores_of_stack,
)
from ..core.pairwise import PairwiseWeights
from ..core.ranking import Element, Ranking
from .base import RankAggregator

__all__ = ["RepeatChoice"]


class RepeatChoice(RankAggregator):
    """Refine a start ranking with the orders of the other input rankings."""

    name = "RepeatChoice"
    family = "K"
    approximation = "2"
    produces_ties = True
    accounts_for_tie_cost = False
    randomized = True

    def __init__(
        self,
        *,
        keep_ties: bool = True,
        num_repeats: int = 1,
        seed: int | None = None,
        kernel: str = "arrays",
    ):
        """
        Parameters
        ----------
        keep_ties:
            When ``True`` (default), remaining ties are kept (the adaptation
            of Section 4.1.2); when ``False``, they are broken arbitrarily
            and the output is a permutation, as in the original algorithm.
        num_repeats:
            Number of independent randomized runs; the best consensus (by
            generalized Kemeny score) is returned.  ``num_repeats > 1``
            corresponds to the "RepeatChoiceMin" rows of the paper's tables.
        kernel:
            ``"arrays"`` (default) realises each run as one lexicographic
            sort of the position tensor; ``"reference"`` replays the
            per-element dictionary refinement.  Equal consensus per run.
        """
        super().__init__(seed=seed)
        if num_repeats < 1:
            raise ValueError(f"num_repeats must be >= 1, got {num_repeats}")
        if kernel not in ("arrays", "reference"):
            raise ValueError(f"unknown kernel {kernel!r}; expected 'arrays' or 'reference'")
        self._keep_ties = keep_ties
        self._num_repeats = num_repeats
        self._kernel = kernel
        if num_repeats > 1:
            self.name = "RepeatChoiceMin"

    def _aggregate(
        self, rankings: Sequence[Ranking], weights: PairwiseWeights
    ) -> Ranking:
        rng = self._rng()
        if self._kernel == "arrays":
            return self._aggregate_arrays(weights, rng)
        best: Ranking | None = None
        best_score: int | None = None
        for _ in range(self._num_repeats):
            candidate = self._single_run(rankings, rng)
            score = generalized_kemeny_score_from_weights(candidate, weights)
            if best_score is None or score < best_score:
                best = candidate
                best_score = score
        assert best is not None
        return best

    def _aggregate_arrays(
        self, weights: PairwiseWeights, rng: np.random.Generator
    ) -> Ranking:
        """Run the repeats as position vectors, score them in one batch.

        The refinement keys of the reference kernel are the tuples of an
        element's positions in the rankings taken in random order; sorting
        the consensus buckets by those tuples is exactly a lexicographic
        sort of the tensor's columns, with bucket boundaries wherever two
        consecutive columns differ.  The generator is consumed identically
        (one ``rng.permutation`` per run), candidates stay dense position
        vectors, and only the winning repeat (first minimum, like the
        serial loop) is materialised as a :class:`Ranking`.
        """
        stack = np.empty((self._num_repeats, weights.num_elements), dtype=np.int64)
        for repeat in range(self._num_repeats):
            stack[repeat] = self._single_run_positions(weights, rng)
        scores = generalized_kemeny_scores_of_stack(stack, weights)
        best = int(np.argmin(scores))
        return _ranking_from_positions(stack[best], weights.elements)

    def _single_run_positions(
        self, weights: PairwiseWeights, rng: np.random.Generator
    ) -> np.ndarray:
        """One refinement run, returned as a dense bucket-position vector."""
        order = rng.permutation(weights.num_rankings)
        keys = weights.positions[order]
        # np.lexsort treats its *last* key as primary: reverse the rows so
        # the first drawn ranking dominates, as in the reference.
        sorted_columns = np.lexsort(keys[::-1])
        positions = np.empty(sorted_columns.size, dtype=np.int64)
        if self._keep_ties:
            ordered_keys = keys[:, sorted_columns]
            new_bucket = np.zeros(sorted_columns.size, dtype=np.int64)
            new_bucket[1:] = (ordered_keys[:, 1:] != ordered_keys[:, :-1]).any(axis=0)
            positions[sorted_columns] = np.cumsum(new_bucket)
        else:
            # break_ties() orders tied elements canonically — exactly the
            # (stable) lexsort order — so the permutation positions are the
            # sorted ranks themselves.
            positions[sorted_columns] = np.arange(sorted_columns.size)
        return positions

    def _single_run(
        self, rankings: Sequence[Ranking], rng: np.random.Generator
    ) -> Ranking:
        order = rng.permutation(len(rankings))
        start = rankings[order[0]]
        # A consensus bucket is represented by the list of refinement keys of
        # its elements: the tuple of positions in the rankings used so far.
        keys: dict[Element, tuple[int, ...]] = {
            element: (start.position_of(element),) for element in start.domain
        }
        for ranking_index in order[1:]:
            refiner = rankings[ranking_index]
            keys = {
                element: key + (refiner.position_of(element),)
                for element, key in keys.items()
            }
        buckets: dict[tuple[int, ...], list[Element]] = {}
        for element, key in keys.items():
            buckets.setdefault(key, []).append(element)
        ordered_keys = sorted(buckets)
        consensus = Ranking([buckets[key] for key in ordered_keys])
        if self._keep_ties:
            return consensus
        return consensus.break_ties()


def _ranking_from_positions(
    positions: np.ndarray, elements: Sequence[Element]
) -> Ranking:
    """Rebuild a ranking from a dense bucket-position vector.

    Elements are grouped by position in ascending order; within a bucket
    they keep the canonical element order (ascending index), matching the
    reference kernel up to within-bucket order (which :class:`Ranking`
    equality ignores).
    """
    order = np.argsort(positions, kind="stable")
    buckets: list[list[Element]] = []
    previous: int | None = None
    for index in order.tolist():
        position = int(positions[index])
        if position != previous:
            buckets.append([])
            previous = position
        buckets[-1].append(elements[index])
    return Ranking(buckets)
