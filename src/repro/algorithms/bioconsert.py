"""BioConsert (Cohen-Boulakia, Denise & Hamel 2011).

Local-search heuristic designed natively for rankings with ties (family [G],
Section 3.1) and the overall best performer of the paper's experiments.
Starting from a candidate consensus, it repeatedly applies the two edition
operations

1. *change bucket*: move an element into an already existing bucket;
2. *new bucket*: remove an element from its bucket and place it alone in a
   new bucket inserted at a given position;

as long as the generalized Kemeny score of the candidate decreases.  As in
the original paper, the search is restarted from every input ranking (each
input is a natural candidate consensus) and the best local optimum is
returned; an additional Borda-based starting point can be enabled.

Implementation notes
--------------------
The score delta of moving one element only involves the pairs containing
that element, so each candidate move is evaluated from the pairwise cost
matrices in O(number of buckets) after an O(n) preparation per element:
for element ``x`` and every bucket ``B`` we pre-compute

* ``sum_{y in B} cost(y before x)``  (cost if ``B`` ends up before ``x``),
* ``sum_{y in B} cost(x before y)``  (cost if ``B`` ends up after ``x``),
* ``sum_{y in B} cost(x tied y)``    (cost if ``x`` joins ``B``),

and prefix sums over buckets give every possible placement in O(k).  A full
sweep over the elements is therefore O(n²), matching the memory complexity
O(n²) stated in the paper.

Two kernels implement the sweep:

* ``kernel="arrays"`` (default) keeps the candidate consensus as a dense
  int bucket-id vector; the per-bucket sums above are segment sums computed
  by ``np.bincount`` over the vector, bucket lookup is O(1), and a move
  renumbers buckets with vectorised masked adds — no per-element Python
  scan, no bucket-list reconstruction.
* ``kernel="reference"`` is the original list-of-buckets implementation,
  retained as the ground truth.

Both kernels evaluate the same moves in the same order with the same
tie-breaking (first minimum), so they follow identical search trajectories
and return equal consensus rankings.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from ..core.kemeny import generalized_kemeny_score_from_weights
from ..core.pairwise import PairwiseWeights
from ..core.ranking import Ranking
from ..datasets.dataset import Dataset
from .anytime import AnytimeController, dataset_label, resolve_weights
from .base import RankAggregator
from .borda import BordaCount

__all__ = ["BioConsert"]


class BioConsert(RankAggregator):
    """Local search over rankings with ties (move-to-bucket / move-to-new-bucket)."""

    name = "BioConsert"
    family = "G"
    approximation = "2"
    produces_ties = True
    accounts_for_tie_cost = True
    randomized = False

    def __init__(
        self,
        *,
        include_borda_start: bool = False,
        max_sweeps: int = 200,
        seed: int | None = None,
        kernel: str = "arrays",
    ):
        """
        Parameters
        ----------
        include_borda_start:
            Also start the local search from the BordaCount consensus, in
            addition to the input rankings.
        max_sweeps:
            Safety cap on the number of full improvement sweeps per starting
            point (the search always terminates because the score strictly
            decreases, but the cap bounds worst-case time).
        kernel:
            ``"arrays"`` (default) for the dense bucket-id-vector sweep,
            ``"reference"`` for the original list-of-buckets implementation.
            Both follow identical search trajectories.
        """
        super().__init__(seed=seed)
        if kernel not in ("arrays", "reference"):
            raise ValueError(f"unknown kernel {kernel!r}; expected 'arrays' or 'reference'")
        self._include_borda_start = include_borda_start
        self._max_sweeps = max_sweeps
        self._kernel = kernel
        self._sweeps_used = 0
        self._starts_used = 0

    # ------------------------------------------------------------------ #
    def _aggregate(
        self, rankings: Sequence[Ranking], weights: PairwiseWeights
    ) -> Ranking:
        cost_before = weights.cost_before().astype(np.int64)
        cost_tied = weights.cost_tied().astype(np.int64)

        starts: list[Ranking] = list(dict.fromkeys(rankings))
        if self._include_borda_start:
            starts.append(BordaCount().consensus(list(rankings)))

        best: Ranking | None = None
        best_score: int | None = None
        self._sweeps_used = 0
        self._starts_used = len(starts)
        for start in starts:
            candidate = self._local_search(start, weights, cost_before, cost_tied)
            score = generalized_kemeny_score_from_weights(candidate, weights)
            if best_score is None or score < best_score:
                best = candidate
                best_score = score
        assert best is not None
        return best

    def refine_from(self, start: Ranking, weights: PairwiseWeights) -> Ranking:
        """Run the local search from an arbitrary starting consensus.

        Used by the chaining strategies of Section 8 (see
        :mod:`repro.algorithms.chained`): the result is never worse than
        ``start`` because every accepted move strictly decreases the score.
        """
        cost_before = weights.cost_before().astype(np.int64)
        cost_tied = weights.cost_tied().astype(np.int64)
        return self._local_search(start, weights, cost_before, cost_tied)

    # ------------------------------------------------------------------ #
    # Anytime protocol (see repro.algorithms.anytime)
    # ------------------------------------------------------------------ #
    def begin_anytime(
        self,
        dataset: Dataset | Sequence[Ranking],
        weights: PairwiseWeights | None = None,
        *,
        initial: Ranking | None = None,
    ) -> AnytimeController:
        """Start an incremental search over ``dataset``.

        Each :meth:`AnytimeController.step` advances the search by one full
        improvement sweep (same trajectory as :meth:`aggregate`); the
        controller's best candidate is always a valid consensus.  Passing
        pre-computed ``weights`` skips the O(m·n²) pairwise construction
        (the portfolio scheduler shares one build across its racers).
        Passing an ``initial`` consensus warm-starts the search: its
        refinement trajectory runs first, with the regular cold starts
        still following, so the completed result is never worse than a
        cold run's.
        """
        rankings = self._validate(dataset)
        weights = resolve_weights(dataset, rankings, weights)
        return AnytimeController(
            self.name,
            self._anytime_candidates(rankings, weights, initial=initial),
            weights,
            dataset_name=dataset_label(dataset),
        )

    def anytime_refine(
        self, start: Ranking, weights: PairwiseWeights
    ) -> Iterator[Ranking]:
        """Incremental form of :meth:`refine_from` (one sweep per item).

        Yields ``start`` first, then the candidate after each improvement
        sweep; used by the chained aggregators' anytime path.
        """
        cost_before = weights.cost_before().astype(np.int64)
        cost_tied = weights.cost_tied().astype(np.int64)
        return self._sweep_candidates(start, weights, cost_before, cost_tied)

    def _anytime_candidates(
        self,
        rankings: Sequence[Ranking],
        weights: PairwiseWeights,
        initial: Ranking | None = None,
    ) -> Iterator[Ranking]:
        """Candidate stream: every start's trajectory, one sweep at a time.

        A warm-start ``initial`` is searched first (its trajectory usually
        reconverges within a couple of sweeps when the dataset changed only
        slightly); the cold starts follow unchanged.
        """
        cost_before = weights.cost_before().astype(np.int64)
        cost_tied = weights.cost_tied().astype(np.int64)
        starts: list[Ranking] = list(dict.fromkeys(rankings))
        if self._include_borda_start:
            starts.append(BordaCount().consensus(list(rankings)))
        if initial is not None:
            starts.insert(0, initial)
        self._sweeps_used = 0
        self._starts_used = len(starts)
        for start in starts:
            yield from self._sweep_candidates(start, weights, cost_before, cost_tied)

    # ------------------------------------------------------------------ #
    def _local_search(
        self,
        start: Ranking,
        weights: PairwiseWeights,
        cost_before: np.ndarray,
        cost_tied: np.ndarray,
    ) -> Ranking:
        candidate = start
        for candidate in self._sweep_candidates(start, weights, cost_before, cost_tied):
            pass
        return candidate

    def _sweep_candidates(
        self,
        start: Ranking,
        weights: PairwiseWeights,
        cost_before: np.ndarray,
        cost_tied: np.ndarray,
    ) -> Iterator[Ranking]:
        """Yield ``start``, then the candidate after each improvement sweep."""
        if self._kernel == "arrays":
            return self._local_search_arrays(start, weights, cost_before, cost_tied)
        return self._local_search_reference(start, weights, cost_before, cost_tied)

    # ------------------------------------------------------------------ #
    # Dense bucket-id-vector kernel (default)
    # ------------------------------------------------------------------ #
    def _local_search_arrays(
        self,
        start: Ranking,
        weights: PairwiseWeights,
        cost_before: np.ndarray,
        cost_tied: np.ndarray,
    ) -> Iterator[Ranking]:
        index_of = weights.index_of
        elements = weights.elements
        n = len(elements)
        # Candidate consensus as a dense bucket-id vector: pos[i] is the
        # bucket index of element i.  Bucket ids stay dense (0 .. k-1).
        # stamp[i] records the arrival order of element i in its current
        # bucket (the reference kernel's lists keep elements in arrival
        # order: start order first, then moved-in elements appended) so the
        # reconstructed Ranking is byte-identical, ties included.
        pos = np.empty(n, dtype=np.int64)
        stamp = np.empty(n, dtype=np.int64)
        arrival = 0
        for bucket_index, bucket in enumerate(start.buckets):
            for element in bucket:
                pos[index_of[element]] = bucket_index
                stamp[index_of[element]] = arrival
                arrival += 1
        next_stamp = [arrival]
        sizes: list[int] = [len(bucket) for bucket in start.buckets]
        # float64 is an exact carrier for the integer costs (< 2**53) and is
        # what np.bincount's weighted segment sums operate on natively.
        cost_before_f = cost_before.astype(np.float64)
        cost_tied_f = cost_tied.astype(np.float64)

        yield start
        for _ in range(self._max_sweeps):
            improved = False
            for x in range(n):
                if self._try_improve_element_arrays(
                    x, pos, sizes, stamp, next_stamp, cost_before_f, cost_tied_f
                ):
                    improved = True
            self._sweeps_used += 1
            yield _reconstruct_ranking(pos, stamp, elements, n)
            if not improved:
                break

    def _try_improve_element_arrays(
        self,
        x: int,
        pos: np.ndarray,
        sizes: list[int],
        stamp: np.ndarray,
        next_stamp: list[int],
        cost_before: np.ndarray,
        cost_tied: np.ndarray,
    ) -> bool:
        """Array twin of :meth:`_try_improve_element` (the reference kernel).

        Per-bucket pair-cost sums are ``np.bincount`` segment sums over the
        bucket-id vector; x's own contribution is zero (zero-diagonal cost
        matrices), so no exclusion pass is needed.  Identical cost formulas
        and first-minimum tie-breaking keep the move sequence bit-identical
        to the reference kernel.
        """
        num_buckets = len(sizes)
        current = int(pos[x])
        was_alone = sizes[current] == 1

        to_x = np.bincount(pos, weights=cost_before[:, x], minlength=num_buckets)
        from_x = np.bincount(pos, weights=cost_before[x, :], minlength=num_buckets)
        tie_x = np.bincount(pos, weights=cost_tied[x, :], minlength=num_buckets)
        if was_alone:
            # x's singleton bucket disappears from the without-x structure.
            to_x = np.delete(to_x, current)
            from_x = np.delete(from_x, current)
            tie_x = np.delete(tie_x, current)
            num_buckets -= 1

        prefix_to_x = np.concatenate(([0.0], np.cumsum(to_x)))      # sum over buckets < k
        suffix_from_x = np.concatenate((np.cumsum(from_x[::-1])[::-1], [0.0]))  # >= k

        # Cost of tying x with bucket k / placing x alone at insertion p.
        tie_costs = prefix_to_x[:num_buckets] + tie_x + suffix_from_x[1:]
        new_costs = prefix_to_x + suffix_from_x

        if was_alone:
            current_cost = new_costs[current]
        else:
            current_cost = tie_costs[current]

        best_tie = tie_costs.min() if num_buckets else np.inf
        best_new = new_costs.min()
        if min(best_tie, best_new) >= current_cost:
            return False

        if was_alone:
            # Renumber the buckets after the removed singleton; x's own
            # entry equals `current` and is left untouched (overwritten below).
            np.subtract(pos, 1, out=pos, where=pos > current)
            del sizes[current]
        else:
            sizes[current] -= 1

        if best_tie <= best_new:
            target = int(np.argmin(tie_costs))
            pos[x] = target
            sizes[target] += 1
        else:
            insertion = int(np.argmin(new_costs))
            # Shift the buckets at/after the insertion point; x's stale
            # entry may shift too, but is overwritten right after.
            np.add(pos, 1, out=pos, where=pos >= insertion)
            pos[x] = insertion
            sizes.insert(insertion, 1)
        # x arrives last in its new bucket (reference kernels append it).
        stamp[x] = next_stamp[0]
        next_stamp[0] += 1
        return True

    # ------------------------------------------------------------------ #
    # Reference list-of-buckets kernel (retained as ground truth)
    # ------------------------------------------------------------------ #
    def _local_search_reference(
        self,
        start: Ranking,
        weights: PairwiseWeights,
        cost_before: np.ndarray,
        cost_tied: np.ndarray,
    ) -> Iterator[Ranking]:
        index_of = weights.index_of
        elements = weights.elements
        n = len(elements)
        # buckets as lists of element indices, in consensus order.
        buckets: list[list[int]] = [
            [index_of[element] for element in bucket] for bucket in start.buckets
        ]

        yield start
        for _ in range(self._max_sweeps):
            improved = False
            for x in range(n):
                if self._try_improve_element(x, buckets, cost_before, cost_tied):
                    improved = True
            self._sweeps_used += 1
            yield Ranking(
                [[elements[i] for i in bucket] for bucket in buckets if bucket]
            )
            if not improved:
                break

    def _try_improve_element(
        self,
        x: int,
        buckets: list[list[int]],
        cost_before: np.ndarray,
        cost_tied: np.ndarray,
    ) -> bool:
        """Evaluate every placement of ``x``; apply the best strictly improving one.

        Reference kernel: rebuilds the without-x bucket lists explicitly.
        """
        current_bucket_index = _find_bucket(buckets, x)
        was_alone = len(buckets[current_bucket_index]) == 1

        # Structure without x (empty buckets dropped).
        others: list[list[int]] = []
        current_position_without_x: int | None = None
        for index, bucket in enumerate(buckets):
            remaining = [y for y in bucket if y != x] if index == current_bucket_index else bucket
            if remaining:
                others.append(remaining)
            if index == current_bucket_index:
                current_position_without_x = len(others) - (0 if was_alone else 1)
        num_buckets = len(others)

        # Per-bucket pair-cost sums for x.
        to_x = np.empty(num_buckets, dtype=np.int64)   # cost(bucket before x)
        from_x = np.empty(num_buckets, dtype=np.int64)  # cost(x before bucket)
        tie_x = np.empty(num_buckets, dtype=np.int64)   # cost(x tied with bucket)
        for k, bucket in enumerate(others):
            indices = np.asarray(bucket, dtype=np.intp)
            to_x[k] = cost_before[indices, x].sum()
            from_x[k] = cost_before[x, indices].sum()
            tie_x[k] = cost_tied[x, indices].sum()

        prefix_to_x = np.concatenate(([0], np.cumsum(to_x)))      # sum over buckets < k
        suffix_from_x = np.concatenate((np.cumsum(from_x[::-1])[::-1], [0]))  # sum over buckets >= k

        # Cost of tying x with bucket k.
        tie_costs = prefix_to_x[:num_buckets] + tie_x + suffix_from_x[1:]
        # Cost of placing x alone in a new bucket at insertion position p (0..num_buckets).
        new_costs = prefix_to_x + suffix_from_x

        # Current contribution of x.
        if was_alone:
            current_cost = int(new_costs[current_position_without_x])
        else:
            current_cost = int(tie_costs[current_position_without_x])

        best_tie = int(tie_costs.min()) if num_buckets else np.iinfo(np.int64).max
        best_new = int(new_costs.min())
        best_cost = min(best_tie, best_new)
        if best_cost >= current_cost:
            return False

        if best_tie <= best_new:
            target = int(np.argmin(tie_costs))
            others[target].append(x)
        else:
            position = int(np.argmin(new_costs))
            others.insert(position, [x])
        buckets[:] = others
        return True

    def _last_details(self) -> dict[str, object]:
        return {"sweeps": self._sweeps_used, "starting_points": self._starts_used}


def _reconstruct_ranking(
    pos: np.ndarray, stamp: np.ndarray, elements: Sequence[object], n: int
) -> Ranking:
    """Rebuild the candidate Ranking from the dense bucket-id vector.

    Groups by bucket, then by arrival stamp within the bucket — the exact
    element order of the reference kernel's bucket lists, so the two
    kernels produce byte-identical rankings, ties included.
    """
    order = np.lexsort((stamp, pos))
    buckets = []
    boundary = 0
    for i in range(1, n + 1):
        if i == n or pos[order[i]] != pos[order[boundary]]:
            buckets.append([elements[j] for j in order[boundary:i]])
            boundary = i
    return Ranking(buckets)


def _find_bucket(buckets: list[list[int]], x: int) -> int:
    for index, bucket in enumerate(buckets):
        if x in bucket:
            return index
    raise ValueError(f"element index {x} not present in the candidate consensus")
