"""Ailon 3/2: LP relaxation of the consensus program with rounding.

Kendall-τ based 3/2-approximation (family [K], Section 3.2), obtained by
relaxing the integer program into a continuous linear program (the variable
values become fractions in [0, 1]) and rounding the fractional solution
back into a ranking.  The paper notes that, used with the ties-aware
objective, the approach can produce rankings with ties "with slight
modification" (Table 1) — the modification being that the relaxation keeps
the ``x_{a=b}`` variables and the rounding step may decide to tie a pair.

This implementation reuses the LPB program of
:mod:`repro.algorithms.exact_lpb` (same objective, same constraints) but
solves it as a continuous LP with ``scipy.optimize.linprog`` (HiGHS) and
rounds the fractional solution with the pivot-based procedure of Ailon et
al.: a random pivot is chosen, every other element is placed before, after
or tied with the pivot according to the largest of the three fractional
variables of the pair, and the procedure recurses on the before/after
groups.  Several rounding passes can be performed (``num_repeats``), the
best rounded consensus being returned.

As in the paper's experiments, the LP itself is the scalability bottleneck:
the program has Θ(n²) variables and Θ(n³) constraints, which is why the
original study could not run Ailon 3/2 beyond a few dozen elements.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy.optimize import linprog

from ..core.exceptions import AlgorithmNotApplicableError, SolverUnavailableError
from ..core.kemeny import generalized_kemeny_score_from_weights
from ..core.pairwise import PairwiseWeights
from ..core.ranking import Element, Ranking
from .base import RankAggregator
from .exact_lpb import build_lpb_program

__all__ = ["AilonThreeHalves"]


class AilonThreeHalves(RankAggregator):
    """LP relaxation of the LPB program + randomized pivot rounding."""

    name = "Ailon3/2"
    family = "K"
    approximation = "3/2"
    produces_ties = True
    accounts_for_tie_cost = True
    randomized = True

    def __init__(
        self,
        *,
        num_repeats: int = 3,
        max_elements: int | None = 45,
        seed: int | None = None,
        kernel: str = "arrays",
    ):
        """
        Parameters
        ----------
        num_repeats:
            Number of independent pivot-rounding passes over the fractional
            LP solution; the best rounded consensus is kept.
        max_elements:
            Refuse datasets with more elements than this (the LP has Θ(n³)
            constraints; the paper reports no result beyond n = 45).  Pass
            ``None`` to remove the guard.
        kernel:
            ``"arrays"`` (default) rounds each recursion node with one
            vectorised argmax over the fractional pair variables, gathered
            into dense (n × n) matrices; ``"reference"`` decides one
            element at a time through the pair-index dictionary.  Same
            pivot draws, same first-maximum tie-breaking — identical
            rounded rankings.  (The LP solve dominates either way; the
            array kernel removes the Python rounding loop from the
            repeated passes.)
        """
        super().__init__(seed=seed)
        if num_repeats < 1:
            raise ValueError(f"num_repeats must be >= 1, got {num_repeats}")
        if kernel not in ("arrays", "reference"):
            raise ValueError(f"unknown kernel {kernel!r}; expected 'arrays' or 'reference'")
        self._num_repeats = num_repeats
        self._max_elements = max_elements
        self._kernel = kernel
        self._lp_value: float | None = None

    # ------------------------------------------------------------------ #
    def _aggregate(
        self, rankings: Sequence[Ranking], weights: PairwiseWeights
    ) -> Ranking:
        n = weights.num_elements
        if n == 1:
            return Ranking([list(weights.elements)])
        if self._max_elements is not None and n > self._max_elements:
            raise AlgorithmNotApplicableError(
                f"Ailon 3/2 LP relaxation is limited to {self._max_elements} elements "
                f"(got {n}); the Θ(n³)-constraint LP does not scale further "
                "(Section 7.1.1 of the paper)"
            )
        program = build_lpb_program(weights)
        result = linprog(
            c=program.objective,
            A_eq=program.equality,
            b_eq=program.equality_rhs,
            A_ub=-program.inequality,
            b_ub=-program.inequality_lower,
            bounds=(0.0, 1.0),
            method="highs",
        )
        if not result.success or result.x is None:
            raise SolverUnavailableError(
                f"LP relaxation failed (status={result.status}, message={result.message!r})"
            )
        self._lp_value = float(result.fun)
        fractional = np.asarray(result.x)

        rng = self._rng()
        pair_matrices = (
            _pair_value_matrices(n, fractional, program.pair_index)
            if self._kernel == "arrays"
            else None
        )
        best: Ranking | None = None
        best_score: int | None = None
        for _ in range(self._num_repeats):
            if pair_matrices is not None:
                buckets = self._pivot_round_arrays(np.arange(n), pair_matrices, rng)
            else:
                buckets = self._pivot_round(
                    list(range(n)), fractional, program.pair_index, rng
                )
            candidate = Ranking(
                [[weights.elements[i] for i in bucket] for bucket in buckets]
            )
            score = generalized_kemeny_score_from_weights(candidate, weights)
            if best_score is None or score < best_score:
                best, best_score = candidate, score
        assert best is not None
        return best

    # ------------------------------------------------------------------ #
    def _pivot_round_arrays(
        self,
        elements: np.ndarray,
        pair_matrices: tuple[np.ndarray, np.ndarray, np.ndarray],
        rng: np.random.Generator,
    ) -> list[list[int]]:
        """Array twin of :meth:`_pivot_round` (identical rounding decisions).

        The fractional pair values live in dense matrices, so one argmax
        over a stacked (3 × node) slice decides every element of the node
        at once; ``np.argmax`` keeps the reference's first-maximum
        preference (before, then after, then tied).
        """
        if elements.size == 0:
            return []
        if elements.size == 1:
            return [[int(elements[0])]]
        x_before, x_after, x_tied = pair_matrices
        pivot = int(elements[int(rng.integers(0, elements.size))])
        others = elements[elements != pivot]
        choices = np.argmax(
            np.stack(
                (x_before[others, pivot], x_after[others, pivot], x_tied[others, pivot])
            ),
            axis=0,
        )
        result = self._pivot_round_arrays(others[choices == 0], pair_matrices, rng)
        result.append([pivot, *others[choices == 2].tolist()])
        result.extend(self._pivot_round_arrays(others[choices == 1], pair_matrices, rng))
        return result

    # ------------------------------------------------------------------ #
    def _pivot_round(
        self,
        elements: list[int],
        fractional: np.ndarray,
        pair_index: dict[tuple[int, int], int],
        rng: np.random.Generator,
    ) -> list[list[int]]:
        """Recursive pivot rounding guided by the fractional LP values."""
        if not elements:
            return []
        if len(elements) == 1:
            return [list(elements)]
        pivot = elements[int(rng.integers(0, len(elements)))]
        before: list[int] = []
        tied: list[int] = [pivot]
        after: list[int] = []
        for element in elements:
            if element == pivot:
                continue
            x_before, x_after, x_tied = _pair_values(element, pivot, fractional, pair_index)
            choice = int(np.argmax([x_before, x_after, x_tied]))
            if choice == 0:
                before.append(element)
            elif choice == 1:
                after.append(element)
            else:
                tied.append(element)
        result = self._pivot_round(before, fractional, pair_index, rng)
        result.append(tied)
        result.extend(self._pivot_round(after, fractional, pair_index, rng))
        return result

    def _last_details(self) -> dict[str, object]:
        return {"lp_objective": self._lp_value, "rounding_repeats": self._num_repeats}


def _pair_value_matrices(
    n: int,
    fractional: np.ndarray,
    pair_index: dict[tuple[int, int], int],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather the fractional pair variables into dense (n × n) matrices.

    ``x_before[a, b]`` is the fractional weight of ranking ``a`` strictly
    before ``b`` (``x_after`` / ``x_tied`` accordingly); one O(n²) gather
    replaces the per-pair dictionary lookups of the rounding loop.

    Parameters
    ----------
    n:
        Number of elements.
    fractional:
        The LP solution vector (pair-major layout, see
        :class:`~repro.algorithms.exact_lpb.LPBProgram`).
    pair_index:
        Unordered-pair index of the program's variable layout.
    """
    pairs = np.fromiter(
        (index for pair in pair_index for index in pair), dtype=np.intp
    ).reshape(-1, 2)
    bases = 3 * np.fromiter(pair_index.values(), dtype=np.intp, count=len(pair_index))
    a, b = pairs[:, 0], pairs[:, 1]
    x_before = np.zeros((n, n))
    x_after = np.zeros((n, n))
    x_tied = np.zeros((n, n))
    x_before[a, b] = fractional[bases]
    x_before[b, a] = fractional[bases + 1]
    x_after[a, b] = fractional[bases + 1]
    x_after[b, a] = fractional[bases]
    x_tied[a, b] = fractional[bases + 2]
    x_tied[b, a] = fractional[bases + 2]
    return x_before, x_after, x_tied


def _pair_values(
    a: int,
    b: int,
    fractional: np.ndarray,
    pair_index: dict[tuple[int, int], int],
) -> tuple[float, float, float]:
    """Fractional (a-before-b, a-after-b, a-tied-b) values of a pair."""
    if a < b:
        base = 3 * pair_index[(a, b)]
        return float(fractional[base]), float(fractional[base + 1]), float(fractional[base + 2])
    base = 3 * pair_index[(b, a)]
    return float(fractional[base + 1]), float(fractional[base]), float(fractional[base + 2])
