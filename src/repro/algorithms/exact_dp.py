"""Exact consensus by dynamic programming over element subsets.

This solver is *not* part of the paper's algorithm catalogue: it is an
independent exact oracle used by the test suite to validate the LPB integer
program (Section 4.2) and the generalized Kemeny score machinery on small
instances, and it gives a solver-free exact option for tiny datasets.

The optimal consensus is built bucket by bucket from the best-ranked one.
For a set ``S`` of still-unplaced elements, choosing ``B ⊆ S`` as the next
bucket costs

* ``Σ_{a ∈ B, b ∈ S\\B} cost(a before b)``  (every remaining element ends up
  after the bucket), plus
* ``Σ_{{a,b} ⊆ B} cost(a tied b)``          (the bucket's internal ties),

and the interaction of ``B`` with the elements already placed was paid when
those buckets were chosen.  Hence the Bellman equation

    opt(S) = min_{∅ ≠ B ⊆ S} [ cross(B, S\\B) + ties(B) + opt(S\\B) ]

over subsets encoded as bitmasks.  The total work is Θ(3^n) either way;
what differs is the constant:

* ``kernel="bitmask"`` (default) runs the whole recurrence on NumPy
  subset-sum tables: the per-subset row sums are built by doubling
  (``O(n·2^n)`` vectorised), ``cross(B, S\\B)`` decomposes into
  ``Σ_{a∈B} rowsum[a, S] − Σ_{a,b∈B} cost(a before b)`` so each state ``S``
  evaluates *all* its ``2^|S|`` candidate buckets with a handful of array
  ops — no per-submask Python walk, no per-element popcount loop;
* ``kernel="reference"`` is the original pure-Python enumeration, retained
  as ground truth.

Both kernels keep the reference's tie-breaking (first strict improvement
while enumerating candidate buckets in decreasing bitmask order), so they
reconstruct identical optimal rankings, ties included.  The vectorised
kernel pushes the practical ceiling from n ≈ 12–14 to n = 16
(the default ``max_elements``).
"""

from __future__ import annotations

from collections.abc import Sequence
from functools import lru_cache

import numpy as np

from ..core.exceptions import AlgorithmNotApplicableError
from ..core.pairwise import PairwiseWeights
from ..core.ranking import Ranking
from .base import RankAggregator

__all__ = ["ExactSubsetDP"]

_MAX_ELEMENTS = 16


def _subset_sums(costs: np.ndarray) -> np.ndarray:
    """``table[a, mask] = Σ_{b ∈ mask} costs[a, b]`` for every bitmask.

    Built by doubling: appending bit ``b`` maps the table over masks of
    bits ``< b`` to the masks containing ``b``.  O(n·2^n) cells, fully
    vectorised.

    Parameters
    ----------
    costs:
        (n × n) integer cost matrix.
    """
    n = costs.shape[0]
    table = np.zeros((n, 1), dtype=np.int64)
    for b in range(n):
        table = np.concatenate((table, table + costs[:, b : b + 1]), axis=1)
    return table


def _pair_sums(rowsum: np.ndarray, colsum: np.ndarray) -> np.ndarray:
    """``out[mask] = Σ_{a, b ∈ mask} cost[a, b]`` from the subset-sum tables.

    Lowest-bit recurrence, vectorised over all masks sharing a lowest bit:
    adding element ``a0`` to ``rest`` adds its row and column sums over
    ``rest`` (the diagonal is zero).

    Parameters
    ----------
    rowsum:
        ``rowsum[a, mask] = Σ_{b ∈ mask} cost[a, b]``.
    colsum:
        ``colsum[a, mask] = Σ_{b ∈ mask} cost[b, a]``.
    """
    n = rowsum.shape[0]
    out = np.zeros(1 << n, dtype=np.int64)
    for b in range(n - 1, -1, -1):
        rests = np.arange(1 << (n - 1 - b), dtype=np.int64) << (b + 1)
        out[rests | (1 << b)] = out[rests] + rowsum[b, rests] + colsum[b, rests]
    return out


class ExactSubsetDP(RankAggregator):
    """Exact consensus with ties via Θ(3^n) subset dynamic programming."""

    name = "ExactSubsetDP"
    family = "G"
    approximation = "exact"
    produces_ties = True
    accounts_for_tie_cost = True
    randomized = False

    def __init__(
        self,
        *,
        max_elements: int = _MAX_ELEMENTS,
        seed: int | None = None,
        kernel: str = "bitmask",
    ):
        """
        Parameters
        ----------
        max_elements:
            Refuse datasets with more elements than this (the DP is
            Θ(3^n)); the default of 16 is practical for the vectorised
            kernel.
        kernel:
            ``"bitmask"`` (default) evaluates every state's candidate
            buckets with vectorised subset-sum tables; ``"reference"`` is
            the original pure-Python enumeration.  Identical consensus,
            ties included.
        """
        super().__init__(seed=seed)
        if kernel not in ("bitmask", "reference"):
            raise ValueError(f"unknown kernel {kernel!r}; expected 'bitmask' or 'reference'")
        self._max_elements = max_elements
        self._kernel = kernel
        self._optimal_score: int | None = None

    def _aggregate(
        self, rankings: Sequence[Ranking], weights: PairwiseWeights
    ) -> Ranking:
        n = weights.num_elements
        if n > self._max_elements:
            raise AlgorithmNotApplicableError(
                f"ExactSubsetDP handles at most {self._max_elements} elements "
                f"(got {n}); use ExactAlgorithm (MILP) for larger instances"
            )
        cost_before = weights.cost_before().astype(np.int64)
        cost_tied = weights.cost_tied().astype(np.int64)
        if self._kernel == "bitmask":
            buckets = self._solve_bitmask(n, cost_before, cost_tied)
        else:
            buckets = self._solve_reference(n, cost_before, cost_tied)
        return Ranking(
            [[weights.elements[i] for i in bucket] for bucket in buckets]
        )

    # ------------------------------------------------------------------ #
    # Vectorised bitmask kernel (default)
    # ------------------------------------------------------------------ #
    def _solve_bitmask(
        self, n: int, cost_before: np.ndarray, cost_tied: np.ndarray
    ) -> list[list[int]]:
        """Bottom-up DP with vectorised per-state bucket evaluation.

        For a state ``S``, every candidate bucket ``B ⊆ S`` is scored as
        ``(h(B) − g[B]) + ties[B] + opt[S \\ B]`` where ``h(B) =
        Σ_{a∈B} rowsum[a, S]`` (a subset-sum over ``S`` built by doubling)
        and ``g[B] = Σ_{a,b∈B} cost_before[a, b]`` corrects the overcount —
        so ``h(B) − g[B] = cross(B, S\\B)`` exactly.  The reference keeps
        the first strict minimum while walking buckets in decreasing mask
        order; the argmin below picks the largest minimising submask,
        which is the same bucket.
        """
        rowsum = _subset_sums(cost_before)
        colsum = _subset_sums(cost_before.T)
        tied_rowsum = _subset_sums(cost_tied)
        # ties[mask]: internal tie cost = half the ordered-pair sum; built
        # directly from the (symmetric) tied table's lowest-bit recurrence.
        n_states = 1 << n
        ties = np.zeros(n_states, dtype=np.int64)
        for b in range(n - 1, -1, -1):
            rests = np.arange(1 << (n - 1 - b), dtype=np.int64) << (b + 1)
            ties[rests | (1 << b)] = ties[rests] + tied_rowsum[b, rests]
        g = _pair_sums(rowsum, colsum)

        opt = np.zeros(n_states, dtype=np.int64)
        choice = np.zeros(n_states, dtype=np.int64)
        for state in range(1, n_states):
            subs = np.zeros(1, dtype=np.int64)
            hsum = np.zeros(1, dtype=np.int64)
            probe = state
            while probe:
                low = probe & -probe
                b = low.bit_length() - 1
                subs = np.concatenate((subs, subs | low))
                hsum = np.concatenate((hsum, hsum + rowsum[b, state]))
                probe ^= low
            buckets = subs[1:]
            candidates = (
                hsum[1:] - g[buckets] + ties[buckets] + opt[state ^ buckets]
            )
            # First minimum in decreasing mask order == last in increasing.
            best = candidates.size - 1 - int(np.argmin(candidates[::-1]))
            opt[state] = candidates[best]
            choice[state] = buckets[best]

        full = n_states - 1
        self._optimal_score = int(opt[full])
        result: list[list[int]] = []
        remaining = full
        while remaining:
            bucket_mask = int(choice[remaining])
            result.append([i for i in range(n) if bucket_mask & (1 << i)])
            remaining ^= bucket_mask
        return result

    # ------------------------------------------------------------------ #
    # Reference pure-Python kernel (retained as ground truth)
    # ------------------------------------------------------------------ #
    def _solve_reference(
        self, n: int, cost_before: np.ndarray, cost_tied: np.ndarray
    ) -> list[list[int]]:
        """The seed implementation: per-mask Python loops end to end."""
        # rowsum[a][mask] = Σ_{b in mask} cost_before[a, b], built incrementally.
        rowsum = np.zeros((n, 1 << n), dtype=np.int64)
        for a in range(n):
            for mask in range(1, 1 << n):
                low = mask & -mask
                b = low.bit_length() - 1
                rowsum[a, mask] = rowsum[a, mask ^ low] + cost_before[a, b]

        # ties[mask] = internal tie cost of the bucket encoded by mask.
        ties = np.zeros(1 << n, dtype=np.int64)
        tied_rowsum = np.zeros((n, 1 << n), dtype=np.int64)
        for a in range(n):
            for mask in range(1, 1 << n):
                low = mask & -mask
                b = low.bit_length() - 1
                tied_rowsum[a, mask] = tied_rowsum[a, mask ^ low] + cost_tied[a, b]
        for mask in range(1, 1 << n):
            low = mask & -mask
            a = low.bit_length() - 1
            rest = mask ^ low
            ties[mask] = ties[rest] + tied_rowsum[a, rest]

        @lru_cache(maxsize=None)
        def solve(remaining: int) -> tuple[int, int]:
            """Return (optimal cost, first-bucket mask) for the remaining set."""
            if remaining == 0:
                return 0, 0
            best_cost: int | None = None
            best_bucket = 0
            bucket = remaining
            while bucket:
                rest = remaining ^ bucket
                cross = 0
                probe = bucket
                while probe:
                    low = probe & -probe
                    a = low.bit_length() - 1
                    cross += int(rowsum[a, rest])
                    probe ^= low
                candidate = cross + int(ties[bucket]) + solve(rest)[0]
                if best_cost is None or candidate < best_cost:
                    best_cost = candidate
                    best_bucket = bucket
                bucket = (bucket - 1) & remaining
            assert best_cost is not None
            return best_cost, best_bucket

        full = (1 << n) - 1
        optimal_cost, _ = solve(full)
        self._optimal_score = optimal_cost

        # Reconstruct the buckets by replaying the optimal decisions.
        buckets: list[list[int]] = []
        remaining = full
        while remaining:
            _, bucket_mask = solve(remaining)
            bucket = [i for i in range(n) if bucket_mask & (1 << i)]
            buckets.append(bucket)
            remaining ^= bucket_mask
        solve.cache_clear()
        return buckets

    def _last_details(self) -> dict[str, object]:
        return {"optimal_score": self._optimal_score}
