"""Exact consensus by dynamic programming over element subsets.

This solver is *not* part of the paper's algorithm catalogue: it is an
independent exact oracle used by the test suite to validate the LPB integer
program (Section 4.2) and the generalized Kemeny score machinery on small
instances, and it gives a solver-free exact option for tiny datasets.

The optimal consensus is built bucket by bucket from the best-ranked one.
For a set ``S`` of still-unplaced elements, choosing ``B ⊆ S`` as the next
bucket costs

* ``Σ_{a ∈ B, b ∈ S\\B} cost(a before b)``  (every remaining element ends up
  after the bucket), plus
* ``Σ_{{a,b} ⊆ B} cost(a tied b)``          (the bucket's internal ties),

and the interaction of ``B`` with the elements already placed was paid when
those buckets were chosen.  Hence the Bellman equation

    opt(S) = min_{∅ ≠ B ⊆ S} [ cross(B, S\\B) + ties(B) + opt(S\\B) ]

over subsets encoded as bitmasks.  The total work is Θ(3^n), practical up
to ``n ≈ 14``; the class refuses larger inputs.
"""

from __future__ import annotations

from collections.abc import Sequence
from functools import lru_cache

import numpy as np

from ..core.exceptions import AlgorithmNotApplicableError
from ..core.pairwise import PairwiseWeights
from ..core.ranking import Ranking
from .base import RankAggregator

__all__ = ["ExactSubsetDP"]

_MAX_ELEMENTS = 14


class ExactSubsetDP(RankAggregator):
    """Exact consensus with ties via Θ(3^n) subset dynamic programming."""

    name = "ExactSubsetDP"
    family = "G"
    approximation = "exact"
    produces_ties = True
    accounts_for_tie_cost = True
    randomized = False

    def __init__(self, *, max_elements: int = _MAX_ELEMENTS, seed: int | None = None):
        super().__init__(seed=seed)
        self._max_elements = max_elements
        self._optimal_score: int | None = None

    def _aggregate(
        self, rankings: Sequence[Ranking], weights: PairwiseWeights
    ) -> Ranking:
        n = weights.num_elements
        if n > self._max_elements:
            raise AlgorithmNotApplicableError(
                f"ExactSubsetDP handles at most {self._max_elements} elements "
                f"(got {n}); use ExactAlgorithm (MILP) for larger instances"
            )
        cost_before = weights.cost_before().astype(np.int64)
        cost_tied = weights.cost_tied().astype(np.int64)

        # rowsum[a][mask] = Σ_{b in mask} cost_before[a, b], built incrementally.
        rowsum = np.zeros((n, 1 << n), dtype=np.int64)
        for a in range(n):
            for mask in range(1, 1 << n):
                low = mask & -mask
                b = low.bit_length() - 1
                rowsum[a, mask] = rowsum[a, mask ^ low] + cost_before[a, b]

        # ties[mask] = internal tie cost of the bucket encoded by mask.
        ties = np.zeros(1 << n, dtype=np.int64)
        tied_rowsum = np.zeros((n, 1 << n), dtype=np.int64)
        for a in range(n):
            for mask in range(1, 1 << n):
                low = mask & -mask
                b = low.bit_length() - 1
                tied_rowsum[a, mask] = tied_rowsum[a, mask ^ low] + cost_tied[a, b]
        for mask in range(1, 1 << n):
            low = mask & -mask
            a = low.bit_length() - 1
            rest = mask ^ low
            ties[mask] = ties[rest] + tied_rowsum[a, rest]

        @lru_cache(maxsize=None)
        def solve(remaining: int) -> tuple[int, int]:
            """Return (optimal cost, first-bucket mask) for the remaining set."""
            if remaining == 0:
                return 0, 0
            best_cost: int | None = None
            best_bucket = 0
            bucket = remaining
            while bucket:
                rest = remaining ^ bucket
                cross = 0
                probe = bucket
                while probe:
                    low = probe & -probe
                    a = low.bit_length() - 1
                    cross += int(rowsum[a, rest])
                    probe ^= low
                candidate = cross + int(ties[bucket]) + solve(rest)[0]
                if best_cost is None or candidate < best_cost:
                    best_cost = candidate
                    best_bucket = bucket
                bucket = (bucket - 1) & remaining
            assert best_cost is not None
            return best_cost, best_bucket

        full = (1 << n) - 1
        optimal_cost, _ = solve(full)
        self._optimal_score = optimal_cost

        # Reconstruct the buckets by replaying the optimal decisions.
        buckets: list[list[int]] = []
        remaining = full
        while remaining:
            _, bucket_mask = solve(remaining)
            bucket = [i for i in range(n) if bucket_mask & (1 << i)]
            buckets.append(bucket)
            remaining ^= bucket_mask
        solve.cache_clear()
        return Ranking(
            [[weights.elements[i] for i in bucket] for bucket in buckets]
        )

    def _last_details(self) -> dict[str, object]:
        return {"optimal_score": self._optimal_score}
