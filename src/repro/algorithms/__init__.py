"""Rank aggregation algorithms (Table 1 of the paper).

Three families (Section 3):

* ``[G]`` generalized-Kendall-τ based, natively handling ties:
  :class:`BioConsert`, :class:`FaginSmall` / :class:`FaginLarge`, plus the
  exact solvers :class:`ExactAlgorithm` (the paper's LPB contribution) and
  :class:`ExactSubsetDP` (validation oracle);
* ``[K]`` Kendall-τ based: :class:`AilonThreeHalves`, :class:`KwikSort`,
  :class:`Chanas` / :class:`ChanasBoth`, :class:`BranchAndBound`,
  :class:`PickAPerm`, :class:`RepeatChoice`;
* ``[P]`` positional: :class:`BordaCount`, :class:`CopelandMethod`,
  :class:`MEDRank`, :class:`MC4`.
"""

from .ailon import AilonThreeHalves
from .annealing import SimulatedAnnealing
from .anytime import AnytimeController, SupportsAnytime, run_anytime, supports_anytime
from .base import AggregationResult, RankAggregator
from .bioconsert import BioConsert
from .chained import ChainedAggregator
from .borda import BordaCount
from .branch_and_bound import BranchAndBound
from .chanas import Chanas, ChanasBoth
from .copeland import CopelandMethod
from .exact_dp import ExactSubsetDP
from .exact_lpb import ExactAlgorithm, build_lpb_program
from .fagin_dyn import FaginDyn, FaginLarge, FaginSmall
from .kwiksort import KwikSort
from .mc4 import MC4
from .medrank import MEDRank
from .pick_a_perm import PickAPerm
from .registry import (
    ALGORITHM_FACTORIES,
    EVALUATED_ALGORITHMS,
    SCALABLE_ALGORITHMS,
    available_algorithms,
    make_algorithm,
    make_evaluated_suite,
    table1_catalogue,
)
from .repeat_choice import RepeatChoice

__all__ = [
    "RankAggregator",
    "AggregationResult",
    "AnytimeController",
    "SupportsAnytime",
    "supports_anytime",
    "run_anytime",
    "AilonThreeHalves",
    "BioConsert",
    "SimulatedAnnealing",
    "ChainedAggregator",
    "BordaCount",
    "BranchAndBound",
    "Chanas",
    "ChanasBoth",
    "CopelandMethod",
    "ExactAlgorithm",
    "ExactSubsetDP",
    "FaginDyn",
    "FaginSmall",
    "FaginLarge",
    "KwikSort",
    "MC4",
    "MEDRank",
    "PickAPerm",
    "RepeatChoice",
    "build_lpb_program",
    "ALGORITHM_FACTORIES",
    "EVALUATED_ALGORITHMS",
    "SCALABLE_ALGORITHMS",
    "available_algorithms",
    "make_algorithm",
    "make_evaluated_suite",
    "table1_catalogue",
]
