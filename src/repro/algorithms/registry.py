"""Algorithm registry and Table 1 catalogue.

Maps the algorithm names used in the paper's tables and figures to factory
functions creating configured instances.  The registry serves three
purposes:

* experiments and benchmarks instantiate algorithms by their paper name;
* the ``Min`` variants of the randomized algorithms (RepeatChoiceMin,
  KwikSortMin — Section 6.2.1: many runs, keep the best) are defined once
  here with the repeat counts used throughout the evaluation;
* :func:`table1_catalogue` regenerates the content of Table 1 (algorithm,
  family, approximation factor, tie capabilities) from the implementations
  themselves.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from .ailon import AilonThreeHalves
from .annealing import SimulatedAnnealing
from .base import RankAggregator
from .bioconsert import BioConsert
from .borda import BordaCount
from .chained import ChainedAggregator
from .branch_and_bound import BranchAndBound
from .chanas import Chanas, ChanasBoth
from .copeland import CopelandMethod
from .exact_dp import ExactSubsetDP
from .exact_lpb import ExactAlgorithm
from .fagin_dyn import FaginLarge, FaginSmall
from .kwiksort import KwikSort
from .mc4 import MC4
from .medrank import MEDRank
from .pick_a_perm import PickAPerm
from .repeat_choice import RepeatChoice

__all__ = [
    "ALGORITHM_FACTORIES",
    "EVALUATED_ALGORITHMS",
    "make_algorithm",
    "available_algorithms",
    "make_evaluated_suite",
    "table1_catalogue",
]

# Number of runs used for the "Min" variants of the randomized algorithms.
DEFAULT_MIN_REPEATS = 20

AlgorithmFactory = Callable[..., RankAggregator]

ALGORITHM_FACTORIES: dict[str, AlgorithmFactory] = {
    "Ailon3/2": lambda seed=None: AilonThreeHalves(seed=seed),
    "BioConsert": lambda seed=None: BioConsert(seed=seed),
    "BordaCount": lambda seed=None: BordaCount(seed=seed),
    "CopelandMethod": lambda seed=None: CopelandMethod(seed=seed),
    "FaginSmall": lambda seed=None: FaginSmall(seed=seed),
    "FaginLarge": lambda seed=None: FaginLarge(seed=seed),
    "KwikSort": lambda seed=None: KwikSort(seed=seed),
    "KwikSortMin": lambda seed=None: KwikSort(num_repeats=DEFAULT_MIN_REPEATS, seed=seed),
    "MEDRank(0.5)": lambda seed=None: MEDRank(0.5, seed=seed),
    "MEDRank(0.7)": lambda seed=None: MEDRank(0.7, seed=seed),
    "MC4": lambda seed=None: MC4(seed=seed),
    "Pick-a-Perm": lambda seed=None: PickAPerm(seed=seed),
    "RepeatChoice": lambda seed=None: RepeatChoice(seed=seed),
    "RepeatChoiceMin": lambda seed=None: RepeatChoice(
        num_repeats=DEFAULT_MIN_REPEATS, seed=seed
    ),
    "Chanas": lambda seed=None: Chanas(seed=seed),
    "ChanasBoth": lambda seed=None: ChanasBoth(seed=seed),
    "BnB": lambda seed=None: BranchAndBound(seed=seed),
    "BnB-beam": lambda seed=None: BranchAndBound(beam_width=32, seed=seed),
    "ExactAlgorithm": lambda seed=None: ExactAlgorithm(seed=seed),
    "ExactSubsetDP": lambda seed=None: ExactSubsetDP(seed=seed),
    # Section 8 extensions: anytime annealing and chaining strategies.
    "SimulatedAnnealing": lambda seed=None: SimulatedAnnealing(seed=seed),
    "Chained(Borda→BioConsert)": lambda seed=None: ChainedAggregator(
        BordaCount(), BioConsert(), seed=seed
    ),
    "Chained(Borda→SA)": lambda seed=None: ChainedAggregator(
        BordaCount(), SimulatedAnnealing(seed=seed), seed=seed
    ),
    "Chained(MEDRank→BioConsert)": lambda seed=None: ChainedAggregator(
        MEDRank(0.5), BioConsert(), seed=seed
    ),
}

# The algorithms re-implemented and experimentally evaluated in the paper
# (bold rows of Table 1, plus the exact algorithm of Section 4.2), in the
# order of Table 4/Table 5.
EVALUATED_ALGORITHMS: tuple[str, ...] = (
    "Ailon3/2",
    "BioConsert",
    "BordaCount",
    "CopelandMethod",
    "FaginLarge",
    "FaginSmall",
    "KwikSort",
    "KwikSortMin",
    "MEDRank(0.5)",
    "MEDRank(0.7)",
    "Pick-a-Perm",
    "RepeatChoice",
    "RepeatChoiceMin",
)

# Fast algorithms usable on every dataset size (no LP / no exponential search).
SCALABLE_ALGORITHMS: tuple[str, ...] = (
    "BioConsert",
    "BordaCount",
    "CopelandMethod",
    "FaginLarge",
    "FaginSmall",
    "KwikSort",
    "KwikSortMin",
    "MEDRank(0.5)",
    "MEDRank(0.7)",
    "Pick-a-Perm",
    "RepeatChoice",
    "RepeatChoiceMin",
)


def available_algorithms() -> list[str]:
    """Names of all registered algorithms."""
    return sorted(ALGORITHM_FACTORIES)


def make_algorithm(name: str, *, seed: int | None = None) -> RankAggregator:
    """Instantiate the algorithm registered under ``name``.

    Parameters
    ----------
    name:
        Paper name of the algorithm (see :func:`available_algorithms`).
    seed:
        Seed forwarded to randomized algorithms.
    """
    try:
        factory = ALGORITHM_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; available: {available_algorithms()}"
        ) from None
    return factory(seed=seed)


def make_evaluated_suite(
    *, seed: int | None = None, include_exact: bool = False, names: Iterable[str] | None = None
) -> dict[str, RankAggregator]:
    """Instantiate the suite of algorithms evaluated in the paper's tables.

    Parameters
    ----------
    seed:
        Seed forwarded to every randomized algorithm.
    include_exact:
        Also include ``ExactAlgorithm`` (needed to compute gaps when the
        harness does not receive pre-computed optima).
    names:
        Optional explicit subset of algorithm names.
    """
    selected = list(names) if names is not None else list(EVALUATED_ALGORITHMS)
    if include_exact and "ExactAlgorithm" not in selected:
        selected.append("ExactAlgorithm")
    return {name: make_algorithm(name, seed=seed) for name in selected}


# --------------------------------------------------------------------------- #
# Table 1
# --------------------------------------------------------------------------- #
_TABLE1_REFERENCES = {
    "Ailon3/2": "[1]",
    "BioConsert": "[12]",
    "BordaCount": "[8],[16]",
    "Chanas": "[11]",
    "ChanasBoth": "[13]",
    "BnB": "[3]",
    "CopelandMethod": "[15]",
    "FaginSmall": "[21]",
    "FaginLarge": "[21]",
    "ExactAlgorithm": "[this paper]",
    "KwikSort": "[2]",
    "MC4": "[20]",
    "MEDRank(0.5)": "[24]",
    "MEDRank(0.7)": "[24]",
    "Pick-a-Perm": "[2]",
    "RepeatChoice": "[1]",
}


def table1_catalogue(names: Iterable[str] | None = None) -> list[dict[str, object]]:
    """Regenerate the rows of Table 1 from the algorithm implementations.

    Each row records the reference, algorithm family (positional /
    Kendall-τ / generalized Kendall-τ), approximation guarantee and tie
    capabilities declared by the implementation classes.
    """
    selected = list(names) if names is not None else [
        "Ailon3/2",
        "BioConsert",
        "BordaCount",
        "Chanas",
        "ChanasBoth",
        "BnB",
        "CopelandMethod",
        "FaginSmall",
        "FaginLarge",
        "ExactAlgorithm",
        "KwikSort",
        "MC4",
        "MEDRank(0.5)",
        "Pick-a-Perm",
        "RepeatChoice",
    ]
    rows = []
    for name in selected:
        algorithm = make_algorithm(name)
        description = algorithm.describe()
        description["reference"] = _TABLE1_REFERENCES.get(name, "")
        rows.append(description)
    return rows
