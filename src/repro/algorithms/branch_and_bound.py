"""Branch-and-bound for the permutation consensus (Ali & Meilă 2012 style).

Kendall-τ based exact algorithm (family [K], Section 3.2).  The search tree
is explored depth first: a node at depth ``j`` fixes the first ``j``
elements of the consensus permutation; its cost is the number of pairwise
disagreements already determined by that prefix (prefix-prefix pairs and
prefix-versus-remaining pairs), and a lower bound on the remaining pairs —
the sum over unordered remaining pairs of the cheaper of the two possible
orders — prunes the branches that cannot beat the incumbent.

As in the paper the algorithm is designed for permutations only: the
objective ignores the possibility of tying elements in the consensus (a
ranking-with-ties version would require a different algorithm, Section
4.1.2).  It can therefore be *optimal among permutations* while being worse
than the ties-aware exact algorithm on datasets whose optimal consensus
contains ties.

A ``beam_width`` parameter turns the exact search into the beam-search
heuristic recommended by [3] for larger instances: at every depth only the
``beam_width`` most promising prefixes are expanded.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.pairwise import PairwiseWeights
from ..core.ranking import Ranking
from .base import RankAggregator
from .borda import borda_scores

__all__ = ["BranchAndBound"]


class BranchAndBound(RankAggregator):
    """Exact (or beam-limited) search over consensus permutations."""

    name = "BnB"
    family = "K"
    approximation = "exact"
    produces_ties = False
    accounts_for_tie_cost = False
    randomized = False

    def __init__(
        self,
        *,
        beam_width: int | None = None,
        max_nodes: int = 2_000_000,
        seed: int | None = None,
    ):
        """
        Parameters
        ----------
        beam_width:
            ``None`` (default) explores the full tree and returns an optimal
            consensus permutation; a positive integer keeps only the best
            ``beam_width`` prefixes per depth (beam-search heuristic).
        max_nodes:
            Safety cap on the number of expanded nodes for the exact search.
        """
        super().__init__(seed=seed)
        if beam_width is not None and beam_width < 1:
            raise ValueError(f"beam_width must be >= 1 or None, got {beam_width}")
        self._beam_width = beam_width
        self._max_nodes = max_nodes
        self._nodes_expanded = 0
        self._proved_optimal = False

    # ------------------------------------------------------------------ #
    def _aggregate(
        self, rankings: Sequence[Ranking], weights: PairwiseWeights
    ) -> Ranking:
        cost_before = weights.cost_before().astype(np.int64)
        n = weights.num_elements
        if self._beam_width is not None:
            order = self._beam_search(cost_before, n)
            self._proved_optimal = False
        else:
            order = self._exact_search(cost_before, n, rankings, weights)
        return Ranking.from_permutation([weights.elements[i] for i in order])

    # ------------------------------------------------------------------ #
    # Exact depth-first branch and bound
    # ------------------------------------------------------------------ #
    def _exact_search(
        self,
        cost_before: np.ndarray,
        n: int,
        rankings: Sequence[Ranking],
        weights: PairwiseWeights,
    ) -> list[int]:
        # Initial incumbent: Borda order (a decent permutation upper bound).
        scores = borda_scores(rankings)
        initial = sorted(range(n), key=lambda i: scores[weights.elements[i]])
        best_order = list(initial)
        best_cost = _prefix_cost(initial, cost_before)

        pair_minimum = np.minimum(cost_before, cost_before.T)

        self._nodes_expanded = 0
        self._proved_optimal = True

        def remaining_lower_bound(remaining: list[int]) -> int:
            if len(remaining) < 2:
                return 0
            indices = np.asarray(remaining, dtype=np.intp)
            sub = pair_minimum[np.ix_(indices, indices)]
            return int(np.triu(sub, k=1).sum())

        def depth_first(prefix: list[int], prefix_cost: int, remaining: list[int]) -> None:
            nonlocal best_order, best_cost
            self._nodes_expanded += 1
            if self._nodes_expanded > self._max_nodes:
                self._proved_optimal = False
                return
            if not remaining:
                if prefix_cost < best_cost:
                    best_cost = prefix_cost
                    best_order = list(prefix)
                return
            bound = prefix_cost + remaining_lower_bound(remaining)
            if bound >= best_cost:
                return
            # Expand children ordered by their incremental cost (cheapest first)
            # to find good incumbents early.
            increments = []
            remaining_array = np.asarray(remaining, dtype=np.intp)
            for position, candidate in enumerate(remaining):
                others = np.delete(remaining_array, position)
                increment = int(cost_before[candidate, others].sum())
                increments.append((increment, candidate, position))
            increments.sort()
            for increment, candidate, position in increments:
                next_remaining = remaining[:position] + remaining[position + 1:]
                depth_first(prefix + [candidate], prefix_cost + increment, next_remaining)

        depth_first([], 0, list(range(n)))
        return best_order

    # ------------------------------------------------------------------ #
    # Beam search heuristic
    # ------------------------------------------------------------------ #
    def _beam_search(self, cost_before: np.ndarray, n: int) -> list[int]:
        assert self._beam_width is not None
        beam: list[tuple[int, list[int], frozenset[int]]] = [(0, [], frozenset(range(n)))]
        self._nodes_expanded = 0
        for _ in range(n):
            children: list[tuple[int, list[int], frozenset[int]]] = []
            for cost, prefix, remaining in beam:
                remaining_list = sorted(remaining)
                remaining_array = np.asarray(remaining_list, dtype=np.intp)
                for position, candidate in enumerate(remaining_list):
                    others = np.delete(remaining_array, position)
                    increment = int(cost_before[candidate, others].sum())
                    children.append(
                        (cost + increment, prefix + [candidate], remaining - {candidate})
                    )
                    self._nodes_expanded += 1
            children.sort(key=lambda node: node[0])
            beam = children[: self._beam_width]
        return beam[0][1]

    def _last_details(self) -> dict[str, object]:
        return {
            "nodes_expanded": self._nodes_expanded,
            "proved_optimal": self._proved_optimal,
            "beam_width": self._beam_width,
        }


def _prefix_cost(order: Sequence[int], cost_before: np.ndarray) -> int:
    indices = np.asarray(order, dtype=np.intp)
    matrix = cost_before[np.ix_(indices, indices)]
    return int(np.triu(matrix, k=1).sum())
