"""KwikSort (Ailon, Charikar & Newman 2008), adapted to rankings with ties.

Divide-and-conquer Kendall-τ based algorithm (family [K], Section 3.2),
11/7-approximation when combined with Pick-a-Perm.  A pivot element is
chosen (at random) among the current elements; every other element is placed
*before*, *after* or — with the ties adaptation of Section 4.1.2 — *tied
with* the pivot, choosing for each element the relation that minimises its
pairwise disagreement with the pivot.  The algorithm then recurses on the
"before" and "after" groups.

The adaptation changes the complexity by a constant factor only; the cost of
(un)tying is taken into account in the per-element decision (Table 1:
"with slight modification" for both columns).

``num_repeats > 1`` yields the "KwikSortMin" variant of the paper's tables:
the randomized algorithm is run repeatedly and the best consensus (smallest
generalized Kemeny score) is kept.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.kemeny import generalized_kemeny_score_from_weights
from ..core.pairwise import PairwiseWeights
from ..core.ranking import Element, Ranking
from .base import RankAggregator

__all__ = ["KwikSort"]


class KwikSort(RankAggregator):
    """Randomized pivot-based divide and conquer, with a 'tie with the pivot' branch."""

    name = "KwikSort"
    family = "K"
    approximation = "11/7"
    produces_ties = True
    accounts_for_tie_cost = True
    randomized = True

    def __init__(
        self,
        *,
        allow_ties: bool = True,
        num_repeats: int = 1,
        seed: int | None = None,
    ):
        """
        Parameters
        ----------
        allow_ties:
            When ``True`` (default) elements may be tied with the pivot; when
            ``False`` the original permutation-only algorithm is run (each
            element goes strictly before or after the pivot).
        num_repeats:
            Number of independent randomized runs; the best result is kept
            ("KwikSortMin" when greater than one).
        """
        super().__init__(seed=seed)
        if num_repeats < 1:
            raise ValueError(f"num_repeats must be >= 1, got {num_repeats}")
        self._allow_ties = allow_ties
        self._num_repeats = num_repeats
        if num_repeats > 1:
            self.name = "KwikSortMin"

    def _aggregate(
        self, rankings: Sequence[Ranking], weights: PairwiseWeights
    ) -> Ranking:
        rng = self._rng()
        best: Ranking | None = None
        best_score: int | None = None
        for _ in range(self._num_repeats):
            buckets = self._kwiksort(list(weights.elements), weights, rng)
            candidate = Ranking(buckets)
            score = generalized_kemeny_score_from_weights(candidate, weights)
            if best_score is None or score < best_score:
                best = candidate
                best_score = score
        assert best is not None
        return best

    def _kwiksort(
        self,
        elements: list[Element],
        weights: PairwiseWeights,
        rng: np.random.Generator,
    ) -> list[list[Element]]:
        """Return the list of consensus buckets for ``elements``."""
        if not elements:
            return []
        if len(elements) == 1:
            return [list(elements)]
        pivot = elements[int(rng.integers(0, len(elements)))]
        before: list[Element] = []
        tied: list[Element] = [pivot]
        after: list[Element] = []
        for element in elements:
            if element == pivot:
                continue
            placement = self._best_placement(element, pivot, weights)
            if placement == "before":
                before.append(element)
            elif placement == "after":
                after.append(element)
            else:
                tied.append(element)
        result = self._kwiksort(before, weights, rng)
        result.append(tied)
        result.extend(self._kwiksort(after, weights, rng))
        return result

    def _best_placement(
        self, element: Element, pivot: Element, weights: PairwiseWeights
    ) -> str:
        """Relation (before / after / tied) of ``element`` w.r.t. the pivot that
        minimises the pairwise disagreements with the input rankings."""
        cost_before = weights.pair_cost(element, pivot, "before")
        cost_after = weights.pair_cost(element, pivot, "after")
        if not self._allow_ties:
            return "before" if cost_before <= cost_after else "after"
        cost_tied = weights.pair_cost(element, pivot, "tied")
        best_cost = min(cost_before, cost_after, cost_tied)
        # Deterministic preference on cost ties: before, then after, then tied;
        # keeping the pivot bucket small makes recursion behave like the
        # original algorithm when the tie branch does not strictly help.
        if cost_before == best_cost:
            return "before"
        if cost_after == best_cost:
            return "after"
        return "tied"
