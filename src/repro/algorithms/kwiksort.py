"""KwikSort (Ailon, Charikar & Newman 2008), adapted to rankings with ties.

Divide-and-conquer Kendall-τ based algorithm (family [K], Section 3.2),
11/7-approximation when combined with Pick-a-Perm.  A pivot element is
chosen (at random) among the current elements; every other element is placed
*before*, *after* or — with the ties adaptation of Section 4.1.2 — *tied
with* the pivot, choosing for each element the relation that minimises its
pairwise disagreement with the pivot.  The algorithm then recurses on the
"before" and "after" groups.

The adaptation changes the complexity by a constant factor only; the cost of
(un)tying is taken into account in the per-element decision (Table 1:
"with slight modification" for both columns).

``num_repeats > 1`` yields the "KwikSortMin" variant of the paper's tables:
the randomized algorithm is run repeatedly and the best consensus (smallest
generalized Kemeny score) is kept.

Two kernels implement the recursion: ``kernel="arrays"`` (default) places
*all* elements of a recursion node against the pivot in one vectorised
comparison of the pairwise cost matrices; ``kernel="reference"`` evaluates
one element at a time through ``PairwiseWeights.pair_cost`` (the seed
path).  Both consume the seeded generator identically (one pivot draw per
node, before/after recursion in the same order) and apply the same
before → after → tied cost tie-breaking, so their outputs are identical
run for run.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.kemeny import (
    generalized_kemeny_score_from_weights,
    generalized_kemeny_scores_of_stack,
)
from ..core.pairwise import PairwiseWeights
from ..core.ranking import Element, Ranking
from .base import RankAggregator

__all__ = ["KwikSort"]


class KwikSort(RankAggregator):
    """Randomized pivot-based divide and conquer, with a 'tie with the pivot' branch."""

    name = "KwikSort"
    family = "K"
    approximation = "11/7"
    produces_ties = True
    accounts_for_tie_cost = True
    randomized = True

    def __init__(
        self,
        *,
        allow_ties: bool = True,
        num_repeats: int = 1,
        seed: int | None = None,
        kernel: str = "arrays",
    ):
        """
        Parameters
        ----------
        allow_ties:
            When ``True`` (default) elements may be tied with the pivot; when
            ``False`` the original permutation-only algorithm is run (each
            element goes strictly before or after the pivot).
        num_repeats:
            Number of independent randomized runs; the best result is kept
            ("KwikSortMin" when greater than one).
        kernel:
            ``"arrays"`` (default) partitions each recursion node with one
            vectorised pivot comparison; ``"reference"`` places elements
            one at a time (seed path).  Identical trajectories.
        """
        super().__init__(seed=seed)
        if num_repeats < 1:
            raise ValueError(f"num_repeats must be >= 1, got {num_repeats}")
        if kernel not in ("arrays", "reference"):
            raise ValueError(f"unknown kernel {kernel!r}; expected 'arrays' or 'reference'")
        self._allow_ties = allow_ties
        self._num_repeats = num_repeats
        self._kernel = kernel
        if num_repeats > 1:
            self.name = "KwikSortMin"

    def _aggregate(
        self, rankings: Sequence[Ranking], weights: PairwiseWeights
    ) -> Ranking:
        rng = self._rng()
        if self._kernel == "arrays":
            return self._aggregate_arrays(weights, rng)
        best: Ranking | None = None
        best_score: int | None = None
        for _ in range(self._num_repeats):
            buckets = self._kwiksort(list(weights.elements), weights, rng)
            candidate = Ranking(buckets)
            score = generalized_kemeny_score_from_weights(candidate, weights)
            if best_score is None or score < best_score:
                best = candidate
                best_score = score
        assert best is not None
        return best

    def _aggregate_arrays(
        self, weights: PairwiseWeights, rng: np.random.Generator
    ) -> Ranking:
        """Run the repeats on index buckets, score them in one batched pass.

        Candidates stay dense position vectors until a winner is known —
        only the best repeat (first minimum, like the reference loop) is
        materialised as a :class:`Ranking`.
        """
        n = weights.num_elements
        cost_before = weights.cost_before()
        cost_tied = weights.cost_tied()
        runs: list[list[list[int]]] = []
        stack = np.empty((self._num_repeats, n), dtype=np.int64)
        for repeat in range(self._num_repeats):
            index_buckets = self._kwiksort_arrays(
                list(range(n)), cost_before, cost_tied, rng
            )
            runs.append(index_buckets)
            for bucket_id, bucket in enumerate(index_buckets):
                stack[repeat, bucket] = bucket_id
        scores = generalized_kemeny_scores_of_stack(stack, weights)
        best = int(np.argmin(scores))  # first minimum, like the serial loop
        return Ranking(
            [[weights.elements[i] for i in bucket] for bucket in runs[best]]
        )

    # Below this node size the vectorised placement loses to NumPy call
    # overhead; a scalar loop over the (memoized) cost matrices — the same
    # formulas, the same tie-breaking — takes over for the deep, small
    # recursion nodes.
    _VECTOR_NODE_MIN = 32

    def _kwiksort_arrays(
        self,
        elements: list[int],
        cost_before: np.ndarray,
        cost_tied: np.ndarray,
        rng: np.random.Generator,
    ) -> list[list[int]]:
        """Array kernel: one vectorised pivot comparison per recursion node.

        Mirrors :meth:`_kwiksort` exactly — same pivot draws (one
        ``rng.integers`` per node with ≥ 2 elements, before-group recursion
        first), same cost formulas (``cost_before[e, p]`` is the cost of
        placing ``e`` before ``p``, its transpose the cost of after,
        ``cost_tied`` the tying cost), same before → after → tied
        preference on cost ties — but decides every element of a large
        node at once from the cost matrices, falling back to a scalar scan
        under :data:`_VECTOR_NODE_MIN` elements.
        """
        if not elements:
            return []
        if len(elements) == 1:
            return [list(elements)]
        pivot = elements[int(rng.integers(0, len(elements)))]
        if len(elements) >= self._VECTOR_NODE_MIN:
            others = np.asarray(
                [element for element in elements if element != pivot], dtype=np.intp
            )
            node_before = cost_before[others, pivot]
            node_after = cost_before[pivot, others]
            if self._allow_ties:
                node_tied = cost_tied[others, pivot]
                best = np.minimum(np.minimum(node_before, node_after), node_tied)
                before_mask = node_before == best
                after_mask = ~before_mask & (node_after == best)
            else:
                before_mask = node_before <= node_after
                after_mask = ~before_mask
            tied_mask = ~(before_mask | after_mask)
            before = others[before_mask].tolist()
            after = others[after_mask].tolist()
            tied = [pivot, *others[tied_mask].tolist()]
        else:
            before, after, tied = [], [], [pivot]
            allow_ties = self._allow_ties
            # 1-D views of the pivot's column/row: scalar reads off a view
            # are markedly cheaper than 2-D tuple indexing in this loop.
            col_before = cost_before[:, pivot]
            row_before = cost_before[pivot]
            col_tied = cost_tied[:, pivot]
            for element in elements:
                if element == pivot:
                    continue
                place_before = col_before[element]
                place_after = row_before[element]
                if not allow_ties:
                    (before if place_before <= place_after else after).append(element)
                    continue
                place_tied = col_tied[element]
                best = min(place_before, place_after, place_tied)
                if place_before == best:
                    before.append(element)
                elif place_after == best:
                    after.append(element)
                else:
                    tied.append(element)
        result = self._kwiksort_arrays(before, cost_before, cost_tied, rng)
        result.append(tied)
        result.extend(self._kwiksort_arrays(after, cost_before, cost_tied, rng))
        return result

    def _kwiksort(
        self,
        elements: list[Element],
        weights: PairwiseWeights,
        rng: np.random.Generator,
    ) -> list[list[Element]]:
        """Return the list of consensus buckets for ``elements``."""
        if not elements:
            return []
        if len(elements) == 1:
            return [list(elements)]
        pivot = elements[int(rng.integers(0, len(elements)))]
        before: list[Element] = []
        tied: list[Element] = [pivot]
        after: list[Element] = []
        for element in elements:
            if element == pivot:
                continue
            placement = self._best_placement(element, pivot, weights)
            if placement == "before":
                before.append(element)
            elif placement == "after":
                after.append(element)
            else:
                tied.append(element)
        result = self._kwiksort(before, weights, rng)
        result.append(tied)
        result.extend(self._kwiksort(after, weights, rng))
        return result

    def _best_placement(
        self, element: Element, pivot: Element, weights: PairwiseWeights
    ) -> str:
        """Relation (before / after / tied) of ``element`` w.r.t. the pivot that
        minimises the pairwise disagreements with the input rankings."""
        cost_before = weights.pair_cost(element, pivot, "before")
        cost_after = weights.pair_cost(element, pivot, "after")
        if not self._allow_ties:
            return "before" if cost_before <= cost_after else "after"
        cost_tied = weights.pair_cost(element, pivot, "tied")
        best_cost = min(cost_before, cost_after, cost_tied)
        # Deterministic preference on cost ties: before, then after, then tied;
        # keeping the pivot bucket small makes recursion behave like the
        # original algorithm when the tie branch does not strictly help.
        if cost_before == best_cost:
            return "before"
        if cost_after == best_cost:
            return "after"
        return "tied"
