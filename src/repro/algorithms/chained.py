"""Chaining strategies: a fast algorithm followed by an anytime refiner.

Section 8 of the paper proposes, as future work, "strategies chaining
several algorithms": produce a first consensus with a cheap algorithm
(positional methods answer in microseconds) and refine it with an anytime
approach (local search, simulated annealing).  This module implements that
strategy so it can be evaluated and ablated against the single-algorithm
baselines of the paper.

A :class:`ChainedAggregator` is built from

* an *initial* aggregator — any :class:`~repro.algorithms.base.RankAggregator`;
* a *refiner* — an object exposing ``refine_from(start, weights)``; both
  :class:`~repro.algorithms.bioconsert.BioConsert` (greedy local search) and
  :class:`~repro.algorithms.annealing.SimulatedAnnealing` do.

Because both refiners only ever keep improvements, the chained result is
never worse than the initial algorithm's consensus.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import Protocol

from ..core.kemeny import generalized_kemeny_score_from_weights
from ..core.pairwise import PairwiseWeights
from ..core.ranking import Ranking
from ..datasets.dataset import Dataset
from .anytime import AnytimeController, dataset_label, resolve_weights
from .base import RankAggregator

__all__ = ["ChainedAggregator", "ConsensusRefiner"]


class ConsensusRefiner(Protocol):
    """Anything that can improve an existing consensus in place."""

    def refine_from(self, start: Ranking, weights: PairwiseWeights) -> Ranking:
        """Return a consensus at least as good as ``start``."""


class ChainedAggregator(RankAggregator):
    """Run a fast algorithm, then refine its consensus with an anytime method."""

    name = "Chained"
    family = "G"
    approximation = None
    produces_ties = True
    accounts_for_tie_cost = True
    randomized = True

    def __init__(
        self,
        initial: RankAggregator,
        refiner: ConsensusRefiner,
        *,
        seed: int | None = None,
    ):
        """
        Parameters
        ----------
        initial:
            The algorithm producing the starting consensus (e.g.
            ``BordaCount()`` or ``MEDRank(0.5)``).
        refiner:
            The anytime refiner (e.g. ``SimulatedAnnealing(seed=0)`` or
            ``BioConsert()``); must expose ``refine_from``.
        """
        super().__init__(seed=seed)
        if not hasattr(refiner, "refine_from"):
            raise TypeError(
                f"{type(refiner).__name__} cannot be used as a refiner: "
                "it does not expose refine_from(start, weights)"
            )
        self._initial = initial
        self._refiner = refiner
        refiner_name = getattr(refiner, "name", type(refiner).__name__)
        self.name = f"Chained({initial.name}→{refiner_name})"
        self._initial_score: int | None = None
        self._refined_score: int | None = None

    def _aggregate(
        self, rankings: Sequence[Ranking], weights: PairwiseWeights
    ) -> Ranking:
        start = self._initial._aggregate(rankings, weights)
        self._initial_score = generalized_kemeny_score_from_weights(start, weights)
        refined = self._refiner.refine_from(start, weights)
        self._refined_score = generalized_kemeny_score_from_weights(refined, weights)
        # Anytime refiners only keep improvements, but guard against a refiner
        # that would not honour the contract.
        if self._refined_score > self._initial_score:
            return start
        return refined

    # ------------------------------------------------------------------ #
    # Anytime protocol (see repro.algorithms.anytime)
    # ------------------------------------------------------------------ #
    def begin_anytime(
        self,
        dataset: Dataset | Sequence[Ranking],
        weights: PairwiseWeights | None = None,
        *,
        initial: Ranking | None = None,
    ) -> AnytimeController:
        """Start an incremental chained run over ``dataset``.

        The first step produces the initial algorithm's consensus (a valid
        result on its own); subsequent steps advance the refiner
        incrementally when it supports the anytime protocol
        (``anytime_refine``), or apply it in one final step otherwise.
        Pre-computed ``weights`` may be passed to skip the pairwise
        construction.  A warm-start ``initial`` consensus replaces the
        initial algorithm's output as the refiner's starting point.
        """
        rankings = self._validate(dataset)
        weights = resolve_weights(dataset, rankings, weights)
        return AnytimeController(
            self.name,
            self._anytime_candidates(rankings, weights, initial=initial),
            weights,
            dataset_name=dataset_label(dataset),
        )

    def _anytime_candidates(
        self,
        rankings: Sequence[Ranking],
        weights: PairwiseWeights,
        initial: Ranking | None = None,
    ) -> Iterator[Ranking]:
        """Candidate stream: the initial consensus (the warm-start
        ``initial`` when given), then refinement steps."""
        if initial is not None:
            start = initial
        else:
            start = self._initial._aggregate(rankings, weights)
        self._initial_score = generalized_kemeny_score_from_weights(start, weights)
        yield start
        anytime_refine = getattr(self._refiner, "anytime_refine", None)
        refined = start
        if anytime_refine is not None:
            for refined in anytime_refine(start, weights):
                yield refined
        else:
            refined = self._refiner.refine_from(start, weights)
            yield refined
        self._refined_score = generalized_kemeny_score_from_weights(refined, weights)

    def _last_details(self) -> dict[str, object]:
        improvement = None
        if self._initial_score is not None and self._refined_score is not None:
            improvement = self._initial_score - self._refined_score
        return {
            "initial_score": self._initial_score,
            "refined_score": self._refined_score,
            "improvement": improvement,
        }
