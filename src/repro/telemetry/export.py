"""Telemetry exporters: JSON lines, Chrome ``trace_event``, Prometheus text.

The canonical on-disk form of a session is the *bundle* — the JSON
dictionary produced by :meth:`repro.telemetry.Telemetry.to_payload`
(spans, metric snapshots, convergence streams).  This module converts a
bundle into the three interchange formats downstream tools consume:

* :func:`to_jsonl` — one JSON object per line (``type`` tagged), the
  append-friendly form log pipelines and the future experiment store
  ingest;
* :func:`to_chrome_trace` — the Chrome ``trace_event`` JSON-array format:
  spans become complete (``"ph": "X"``) events on per-process/thread
  lanes and convergence streams become counter (``"ph": "C"``) tracks, so
  the file loads directly in ``chrome://tracing`` or Perfetto and renders
  score-vs-time curves next to the span waterfall;
* :func:`to_prometheus` — the Prometheus text exposition format
  (counters, gauges, cumulative ``_bucket``/``_sum``/``_count``
  histogram series) for scrape-style monitoring.

:func:`validate_chrome_trace` checks an exported trace against the
``trace_event`` schema (required keys, known phases, non-negative
timestamps/durations) — the CI telemetry smoke job gates on it.
:func:`span_tree` folds a bundle's flat span list into nested trees,
which is what ``workloads_report.json`` embeds per scenario.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

__all__ = [
    "save_bundle",
    "load_bundle",
    "to_jsonl",
    "to_chrome_trace",
    "to_prometheus",
    "validate_chrome_trace",
    "span_tree",
    "summarize_bundle",
]

_CHROME_PHASES = frozenset("BEXiICPSTFsftpbneM")


def save_bundle(payload: dict[str, Any], path: str | Path) -> Path:
    """Write a telemetry bundle to ``path`` as indented JSON.

    Parameters
    ----------
    payload:
        The bundle (``Telemetry.to_payload()``).
    path:
        Destination file; parent directories are created.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_bundle(path: str | Path) -> dict[str, Any]:
    """Read a telemetry bundle written by :func:`save_bundle`.

    Parameters
    ----------
    path:
        Bundle file path.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or payload.get("telemetry") != "bundle":
        raise ValueError(f"{path} is not a telemetry bundle")
    return payload


# --------------------------------------------------------------------------- #
# JSON lines
# --------------------------------------------------------------------------- #
def to_jsonl(payload: dict[str, Any]) -> str:
    """Render a bundle as JSON lines (one ``type``-tagged object per line).

    Parameters
    ----------
    payload:
        The bundle to render.
    """
    lines: list[str] = []
    for span in payload.get("spans", []):
        lines.append(json.dumps({"type": "span", **span}, sort_keys=True))
    for metric in payload.get("metrics", []):
        lines.append(json.dumps({"type": "metric", **metric}, sort_keys=True))
    for stream in payload.get("convergence", []):
        lines.append(json.dumps({"type": "convergence", **stream}, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


# --------------------------------------------------------------------------- #
# Chrome trace_event
# --------------------------------------------------------------------------- #
def to_chrome_trace(payload: dict[str, Any]) -> dict[str, Any]:
    """Render a bundle in the Chrome ``trace_event`` format.

    Timestamps are microseconds relative to the earliest span start, so
    the trace opens at t=0 in the viewer.  Spans map to complete events
    (``"ph": "X"``), convergence streams to counter tracks
    (``"ph": "C"``, one ``convergence:{algorithm}`` track per stream) and
    process lanes are labelled with metadata events.

    Parameters
    ----------
    payload:
        The bundle to render.
    """
    spans = payload.get("spans", [])
    origin = min((span["start_unix"] for span in spans), default=0.0)

    events: list[dict[str, Any]] = []
    pids: set[int] = set()
    for span in spans:
        pid = int(span.get("pid", 0))
        pids.add(pid)
        events.append(
            {
                "name": span["name"],
                "ph": "X",
                "ts": max(0.0, (span["start_unix"] - origin) * 1e6),
                "dur": max(0.0, span["duration_seconds"] * 1e6),
                "pid": pid,
                "tid": int(span.get("tid", 0)),
                "args": {
                    "span_id": span["span_id"],
                    "parent_id": span.get("parent_id"),
                    **span.get("attributes", {}),
                },
            }
        )

    # Convergence curves as counter tracks: Perfetto renders each track as
    # a step chart — the paper's score-vs-time plot, straight from a run.
    for stream in payload.get("convergence", []):
        track = f"convergence:{stream.get('algorithm', '?')}"
        if stream.get("dataset"):
            track += f":{stream['dataset']}"
        start = _stream_start(stream, payload, origin)
        for event in stream.get("events", []):
            events.append(
                {
                    "name": track,
                    "ph": "C",
                    "ts": max(0.0, (start + event["elapsed_seconds"]) * 1e6),
                    "pid": 0,
                    "tid": 0,
                    "id": str(stream.get("stream_id", 0)),
                    "args": {"best_score": event["best_score"]},
                }
            )

    for pid in sorted(pids):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": f"repro pid {pid}"},
            }
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": payload.get("trace_id", "")},
    }


def _stream_start(stream: dict[str, Any], payload: dict[str, Any], origin: float) -> float:
    """Offset (seconds from trace origin) a stream's elapsed times hang off.

    Convergence events carry elapsed-since-search-start times; without a
    recorded wall anchor the curve is drawn from the trace origin, which
    keeps relative timing readable.
    """
    anchor = stream.get("start_unix")
    if anchor is None:
        return 0.0
    return max(0.0, float(anchor) - origin)


def validate_chrome_trace(trace: dict[str, Any]) -> list[str]:
    """Validate a Chrome trace against the ``trace_event`` schema.

    Returns a list of problem descriptions (empty when the trace is
    valid): the container must hold a ``traceEvents`` list, every event a
    string ``name``, a known ``ph`` phase, numeric non-negative ``ts``,
    integer ``pid``/``tid``, and complete (``X``) events a non-negative
    ``dur``.

    Parameters
    ----------
    trace:
        The trace dictionary (``to_chrome_trace`` output or parsed file).
    """
    problems: list[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["trace has no 'traceEvents' list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing or empty 'name'")
        phase = event.get("ph")
        if not isinstance(phase, str) or phase not in _CHROME_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: invalid 'ts' {ts!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: missing integer {key!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event with invalid 'dur' {dur!r}")
    return problems


# --------------------------------------------------------------------------- #
# Prometheus text exposition
# --------------------------------------------------------------------------- #
def to_prometheus(payload: dict[str, Any]) -> str:
    """Render a bundle's metrics in the Prometheus text format.

    Metric names are sanitized to ``[a-zA-Z0-9_]`` (dots become
    underscores); histograms expose cumulative ``_bucket`` series plus
    ``_sum`` and ``_count``.

    Parameters
    ----------
    payload:
        The bundle to render.
    """
    lines: list[str] = []
    for metric in payload.get("metrics", []):
        name = _prom_name(metric["name"])
        kind = metric["kind"]
        if metric.get("help"):
            lines.append(f"# HELP {name} {metric['help']}")
        lines.append(f"# TYPE {name} {'histogram' if kind == 'histogram' else kind}")
        if kind in ("counter", "gauge"):
            for series in metric.get("series", []):
                lines.append(f"{name}{_prom_labels(series['labels'])} {series['value']}")
        elif kind == "histogram":
            bounds = metric.get("bounds", [])
            for series in metric.get("series", []):
                cumulative = 0
                for bound, bucket in zip(bounds, series["buckets"]):
                    cumulative += bucket
                    labels = {**series["labels"], "le": _prom_float(bound)}
                    lines.append(f"{name}_bucket{_prom_labels(labels)} {cumulative}")
                labels = {**series["labels"], "le": "+Inf"}
                lines.append(f"{name}_bucket{_prom_labels(labels)} {series['count']}")
                lines.append(f"{name}_sum{_prom_labels(series['labels'])} {series['sum']}")
                lines.append(f"{name}_count{_prom_labels(series['labels'])} {series['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def _prom_name(name: str) -> str:
    return "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)


def _prom_labels(labels: dict[str, Any]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{_prom_name(str(key))}="{str(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _prom_float(value: float) -> str:
    text = repr(float(value))
    return text[:-2] if text.endswith(".0") else text


# --------------------------------------------------------------------------- #
# Span trees and summaries
# --------------------------------------------------------------------------- #
def span_tree(
    spans: list[dict[str, Any]], root_id: str | None = None
) -> list[dict[str, Any]]:
    """Fold a flat span list into nested trees.

    Each node is ``{"name", "span_id", "duration_seconds", "attributes",
    "children"}``, children ordered by start time.  With ``root_id`` the
    result is that span's subtree (a single-element list); otherwise every
    trace root becomes a tree.

    Parameters
    ----------
    spans:
        Span payloads (the bundle's ``"spans"`` list).
    root_id:
        Restrict the result to the subtree rooted at this span id.
    """
    by_parent: dict[str | None, list[dict[str, Any]]] = {}
    by_id: dict[str, dict[str, Any]] = {}
    for span in spans:
        by_parent.setdefault(span.get("parent_id"), []).append(span)
        by_id[span["span_id"]] = span

    def node(span: dict[str, Any]) -> dict[str, Any]:
        children = sorted(
            by_parent.get(span["span_id"], []), key=lambda item: item["start_unix"]
        )
        return {
            "name": span["name"],
            "span_id": span["span_id"],
            "duration_seconds": span["duration_seconds"],
            "attributes": dict(span.get("attributes", {})),
            "children": [node(child) for child in children],
        }

    if root_id is not None:
        root = by_id.get(root_id)
        return [node(root)] if root is not None else []
    roots = [span for span in spans if span.get("parent_id") not in by_id]
    return [node(span) for span in sorted(roots, key=lambda item: item["start_unix"])]


def summarize_bundle(payload: dict[str, Any]) -> dict[str, Any]:
    """Aggregate a bundle into the `telemetry summary` CLI's table rows.

    Returns per-span-name totals (count, total/mean/max duration, sorted
    by total descending), metric counts and convergence stream headlines.

    Parameters
    ----------
    payload:
        The bundle to summarize.
    """
    by_name: dict[str, dict[str, Any]] = {}
    for span in payload.get("spans", []):
        row = by_name.setdefault(
            span["name"], {"name": span["name"], "count": 0, "total": 0.0, "max": 0.0}
        )
        row["count"] += 1
        row["total"] += span["duration_seconds"]
        row["max"] = max(row["max"], span["duration_seconds"])
    rows = sorted(by_name.values(), key=lambda row: -row["total"])
    for row in rows:
        row["mean"] = row["total"] / row["count"] if row["count"] else 0.0

    streams = [
        {
            "algorithm": stream.get("algorithm", "?"),
            "dataset": stream.get("dataset", ""),
            "events": len(stream.get("events", [])),
            "final_score": (
                stream["events"][-1]["best_score"] if stream.get("events") else None
            ),
        }
        for stream in payload.get("convergence", [])
    ]
    return {
        "trace_id": payload.get("trace_id", ""),
        "num_spans": len(payload.get("spans", [])),
        "num_metrics": len(payload.get("metrics", [])),
        "num_convergence_streams": len(streams),
        "spans_by_name": rows,
        "convergence": streams,
    }
