"""Unified telemetry: spans, metrics and anytime convergence traces.

The observability layer of the reproduction-turned-serving-system.  One
:class:`Telemetry` session bundles three complementary instruments:

* a span-based **tracer** (:mod:`repro.telemetry.spans`) — where one
  request's or batch's time went, as a parent/child tree propagated
  across threads *and* worker processes
  (:mod:`repro.telemetry.propagation`);
* a **metrics registry** (:mod:`repro.telemetry.metrics`) — counters,
  gauges and fixed-bucket histograms wired into the hot paths (aggregate
  stages, engine fan-out, cache tiers, portfolio members, service
  queue/execution latency);
* an **anytime convergence log** (:mod:`repro.telemetry.convergence`) —
  ``(step, best_score, elapsed)`` score-vs-time curves recorded from the
  ``begin_anytime``/``step`` protocol.

Telemetry is **disabled by default and free when disabled**: every
instrumentation site goes through the :mod:`repro.telemetry.runtime`
helpers, which short-circuit on an ``is None`` check — no objects, no
clock reads, no entries (guarded by tests and
``benchmarks/BENCH_telemetry.json``).  Enable it per run:

>>> from repro import telemetry
>>> with telemetry.session() as t:
...     ...  # any aggregation / engine / service work
>>> bundle = t.to_payload()

Bundles export to JSON lines, the Chrome ``trace_event`` format (loadable
in Perfetto) and Prometheus text (:mod:`repro.telemetry.export`), and the
``repro-rankagg telemetry`` CLI summarizes / converts saved bundles.
"""

from __future__ import annotations

from .convergence import ConvergenceEvent, ConvergenceLog, ConvergenceStream
from .export import (
    load_bundle,
    save_bundle,
    span_tree,
    summarize_bundle,
    to_chrome_trace,
    to_jsonl,
    to_prometheus,
    validate_chrome_trace,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .propagation import traced_map
from .runtime import (
    Telemetry,
    convergence_stream,
    count,
    disable,
    enable,
    get_active,
    is_enabled,
    observe,
    session,
    set_gauge,
    span,
)
from .spans import Span, SpanHandle, Tracer

__all__ = [
    "Telemetry",
    "enable",
    "disable",
    "session",
    "get_active",
    "is_enabled",
    "span",
    "count",
    "observe",
    "set_gauge",
    "convergence_stream",
    "Tracer",
    "Span",
    "SpanHandle",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "ConvergenceLog",
    "ConvergenceStream",
    "ConvergenceEvent",
    "traced_map",
    "save_bundle",
    "load_bundle",
    "to_jsonl",
    "to_chrome_trace",
    "to_prometheus",
    "validate_chrome_trace",
    "span_tree",
    "summarize_bundle",
]
