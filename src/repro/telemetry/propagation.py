"""Cross-backend trace propagation: one connected trace, whatever the backend.

The engine fans work out on an :class:`~repro.engine.backends.ExecutionBackend`.
For spans to stay connected, two context hops must be bridged:

* **threads** — pool threads have their own (empty) contextvar context, so
  a span opened inside a worker thread would become a dangling root.  The
  wrapper re-attaches the driver's current span id before calling the
  work function; spans record directly into the shared tracer.
* **processes** — workers share nothing.  The wrapper (pickled with the
  driver's trace id and parent span id) activates a short-lived
  worker-side :class:`~repro.telemetry.Telemetry` session around the
  call and ships the session bundle back piggy-backed on the result; the
  driver merges it, re-parenting the worker's root spans under the
  fan-out span.  Worker-side metric snapshots and convergence streams
  merge the same way, so per-tier cache counters and score-vs-time curves
  survive the process boundary too.

:func:`traced_map` is the single entry point the engine calls in place of
``backend.map``: with telemetry disabled it *is* ``backend.map`` — no
wrapper objects, no overhead.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from typing import Any

from . import runtime
from .runtime import Telemetry

__all__ = ["traced_map", "TracedCall", "ShippedResult"]


class ShippedResult:
    """A worker's return value plus its telemetry bundle.

    Attributes
    ----------
    result:
        The wrapped function's actual return value.
    bundle:
        The worker session's ``Telemetry.to_payload()`` snapshot.
    """

    __slots__ = ("result", "bundle")

    def __init__(self, result: Any, bundle: dict[str, Any]):
        self.result = result
        self.bundle = bundle


class TracedCall:
    """Picklable wrapper carrying the driver's trace context to a worker.

    Parameters
    ----------
    function:
        The work function being fanned out (must be picklable for process
        backends, like the engine's ``execute_spec``).
    trace_id:
        The driver session's trace id.
    parent_id:
        Span id the worker's spans are parented under (the fan-out span).
    origin_pid:
        The driver's process id, captured at construction.  A fork-started
        worker inherits the driver's module-global session, so the trace
        id alone cannot tell "same process" from "forked copy" — spans
        recorded into the inherited copy would die with the worker.
    """

    __slots__ = ("function", "trace_id", "parent_id", "origin_pid")

    def __init__(
        self, function: Callable[[Any], Any], trace_id: str, parent_id: str | None
    ):
        self.function = function
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.origin_pid = os.getpid()

    def __call__(self, item: Any) -> Any:
        active = runtime.get_active()
        if (
            active is not None
            and active.tracer.trace_id == self.trace_id
            and os.getpid() == self.origin_pid
        ):
            # Same process (serial backend, or a thread pool sharing the
            # module global): record into the shared tracer, re-attaching
            # the driver's parent id — pool threads start context-less.
            with active.tracer.attach(self.parent_id):
                return self.function(item)
        # Different process (or a foreign session): collect into a
        # short-lived worker session and ship the bundle back.
        worker = Telemetry(trace_id=self.trace_id)
        previous = runtime.get_active()
        runtime.enable(worker)
        try:
            with worker.tracer.attach(None):
                result = self.function(item)
        finally:
            if previous is None:
                runtime.disable()
            else:
                runtime.enable(previous)
        return ShippedResult(result, worker.to_payload())


def traced_map(
    backend,
    function: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    span_name: str = "fanout",
    **attributes: Any,
) -> list[Any]:
    """Fan ``function`` over ``items`` on ``backend``, keeping one trace.

    With telemetry disabled this is exactly ``backend.map(function,
    items)``.  Enabled, the whole fan-out runs under a ``span_name`` span
    and every worker's spans/metrics/convergence re-attach to the active
    session (see the module docstring for the thread/process mechanics).

    Parameters
    ----------
    backend:
        An :class:`~repro.engine.backends.ExecutionBackend`.
    function:
        The work function to map.
    items:
        The work items, fanned out in order.
    span_name:
        Name of the span wrapping the fan-out.
    attributes:
        Attributes recorded on the fan-out span.
    """
    active = runtime.get_active()
    if active is None:
        return backend.map(function, items)
    with active.tracer.span(
        span_name, backend=backend.name, items=len(items), **attributes
    ) as handle:
        wrapped = TracedCall(function, active.tracer.trace_id, handle.span_id)
        outcomes = backend.map(wrapped, items)
        results: list[Any] = []
        for outcome in outcomes:
            if isinstance(outcome, ShippedResult):
                active.merge_payload(outcome.bundle, parent_id=handle.span_id)
                results.append(outcome.result)
            else:
                results.append(outcome)
    return results
