"""Anytime convergence event streams: score-vs-time curves as data.

The anytime protocol (:mod:`repro.algorithms.anytime`) turns the
local-search family into incremental searches whose best-so-far score
improves step by step.  *How fast* it improves is exactly the information
a budget-aware serving system needs — which member converges first, when
the curve flattens, whether a bigger budget would still pay — yet until
now the curve existed only transiently inside the race loop.

A :class:`ConvergenceLog` records it: each driven controller owns a
:class:`ConvergenceStream` and appends one ``(step, best_score,
elapsed_seconds)`` tuple per :meth:`~repro.algorithms.anytime.AnytimeController.step`
call.  Streams are keyed by algorithm and dataset, serialize into the
telemetry bundle, and export as Chrome-trace counter tracks — Perfetto
renders them as the paper's score-vs-time plots, per request.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any

__all__ = ["ConvergenceEvent", "ConvergenceStream", "ConvergenceLog"]


@dataclass(frozen=True)
class ConvergenceEvent:
    """One point of a score-vs-time curve.

    Attributes
    ----------
    step:
        The anytime step index that produced the score (1-based).
    best_score:
        Best generalized Kemeny score seen so far (monotone non-increasing
        along a stream).
    elapsed_seconds:
        Monotonic-clock time since the stream's search started.
    """

    step: int
    best_score: int
    elapsed_seconds: float

    def to_payload(self) -> dict[str, Any]:
        """JSON-serializable form."""
        return {
            "step": self.step,
            "best_score": self.best_score,
            "elapsed_seconds": self.elapsed_seconds,
        }


class ConvergenceStream:
    """The recorded curve of one incremental search.

    Parameters
    ----------
    algorithm:
        Name of the algorithm driving the search.
    dataset:
        Name of the dataset being aggregated (``""`` when unknown).
    stream_id:
        Unique identifier within the log (disambiguates two races of the
        same algorithm on the same dataset).
    """

    def __init__(self, algorithm: str, dataset: str = "", stream_id: int = 0):
        self.algorithm = algorithm
        self.dataset = dataset
        self.stream_id = stream_id
        # Wall-clock anchor the elapsed offsets hang off in merged exports.
        self.start_unix = time.time()
        self.events: list[ConvergenceEvent] = []

    def record(self, step: int, best_score: int, elapsed_seconds: float) -> None:
        """Append one ``(step, best_score, elapsed)`` point.

        Parameters
        ----------
        step:
            The anytime step index (1-based).
        best_score:
            Best score seen so far.
        elapsed_seconds:
            Monotonic time since the search started.
        """
        self.events.append(ConvergenceEvent(step, best_score, elapsed_seconds))

    @property
    def final_score(self) -> int | None:
        """Best score of the last recorded event (``None`` when empty)."""
        return self.events[-1].best_score if self.events else None

    @property
    def initial_score(self) -> int | None:
        """Best score of the first recorded event (``None`` when empty)."""
        return self.events[0].best_score if self.events else None

    @property
    def score_delta(self) -> int | None:
        """Total improvement over the stream: first minus last best score.

        Non-negative (best-so-far scores are monotone non-increasing);
        ``None`` when the stream is empty.  The number a live-serving
        repair report quotes: how much the warm-started search improved on
        its starting consensus.
        """
        if not self.events:
            return None
        return self.events[0].best_score - self.events[-1].best_score

    def __len__(self) -> int:
        return len(self.events)

    def to_payload(self) -> dict[str, Any]:
        """JSON-serializable form (one bundle entry per stream)."""
        return {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "stream_id": self.stream_id,
            "start_unix": self.start_unix,
            "events": [event.to_payload() for event in self.events],
        }


class ConvergenceLog:
    """Session container of every convergence stream.

    Thread-safe: concurrent anytime races (thread-backend batches) open
    independent streams under one lock.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._streams: list[ConvergenceStream] = []

    def stream(self, algorithm: str, dataset: str = "") -> ConvergenceStream:
        """Open a new stream for one search.

        Parameters
        ----------
        algorithm:
            Name of the algorithm driving the search.
        dataset:
            Name of the dataset being aggregated.
        """
        with self._lock:
            stream = ConvergenceStream(algorithm, dataset, stream_id=len(self._streams))
            self._streams.append(stream)
            return stream

    def streams(self) -> list[ConvergenceStream]:
        """Snapshot of every stream opened so far."""
        with self._lock:
            return list(self._streams)

    def __len__(self) -> int:
        with self._lock:
            return len(self._streams)

    def to_payload(self) -> list[dict[str, Any]]:
        """JSON-serializable snapshot of every stream."""
        return [stream.to_payload() for stream in self.streams()]

    def merge_payload(self, payload: list[dict[str, Any]]) -> None:
        """Append streams recorded elsewhere (a worker process).

        Parameters
        ----------
        payload:
            A list previously produced by :meth:`to_payload`.
        """
        with self._lock:
            for item in payload:
                stream = ConvergenceStream(
                    str(item.get("algorithm", "")),
                    str(item.get("dataset", "")),
                    stream_id=len(self._streams),
                )
                if "start_unix" in item:
                    stream.start_unix = float(item["start_unix"])
                for event in item.get("events", []):
                    stream.record(
                        int(event["step"]),
                        int(event["best_score"]),
                        float(event["elapsed_seconds"]),
                    )
                self._streams.append(stream)

    def __repr__(self) -> str:
        return f"ConvergenceLog(streams={len(self)})"
