"""Telemetry runtime: the active session and the zero-overhead hot-path API.

Instrumentation sites across the library never talk to a tracer or a
registry directly — they call the module-level helpers
(:func:`span`, :func:`count`, :func:`observe`, :func:`set_gauge`,
:func:`convergence_stream`), which consult the single module-global
*active session*:

* **disabled** (the default): the helpers short-circuit on an
  ``is None`` check and return shared no-op singletons — no span objects,
  no dictionary writes, no clock reads.  The disabled cost of an
  instrumented hot path is a function call and a branch
  (``BENCH_telemetry.json`` asserts it stays within 5% of uninstrumented
  code);
* **enabled** (:func:`enable` / the :func:`session` context manager): the
  helpers delegate to the active :class:`Telemetry` session, which
  bundles a :class:`~repro.telemetry.spans.Tracer`, a
  :class:`~repro.telemetry.metrics.MetricsRegistry` and a
  :class:`~repro.telemetry.convergence.ConvergenceLog`.

The session is intentionally process-global rather than threaded through
every call signature: aggregation hot paths are called from dozens of
sites (experiments, engine workers, the service frontend), and threading
a handle through all of them would put a telemetry parameter into every
public API.  Worker processes get their own short-lived session per
shipped call (see :mod:`repro.telemetry.propagation`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any

from .convergence import ConvergenceLog, ConvergenceStream
from .metrics import MetricsRegistry
from .spans import Tracer

__all__ = [
    "Telemetry",
    "enable",
    "disable",
    "get_active",
    "is_enabled",
    "session",
    "span",
    "attach",
    "count",
    "observe",
    "set_gauge",
    "convergence_stream",
]


class Telemetry:
    """One telemetry session: a tracer, a metrics registry, a convergence log.

    Parameters
    ----------
    trace_id:
        Trace identifier forwarded to the tracer; worker-side sessions
        receive the driver's id so shipped spans merge into one trace.
    """

    def __init__(self, trace_id: str | None = None):
        self.tracer = Tracer(trace_id)
        self.metrics = MetricsRegistry()
        self.convergence = ConvergenceLog()

    # ------------------------------------------------------------------ #
    def entry_count(self) -> int:
        """Total recorded entries (spans + metric instruments + streams).

        The probe the zero-overhead guard tests are stated against: a
        telemetry-disabled run must leave this at exactly zero.
        """
        return len(self.tracer) + len(self.metrics) + len(self.convergence)

    def to_payload(self) -> dict[str, Any]:
        """The telemetry *bundle*: the JSON-serializable session snapshot."""
        return {
            "telemetry": "bundle",
            "version": 1,
            "trace_id": self.tracer.trace_id,
            "spans": self.tracer.to_payload(),
            "metrics": self.metrics.to_payload(),
            "convergence": self.convergence.to_payload(),
        }

    def merge_payload(self, payload: dict[str, Any], *, parent_id: str | None = None) -> None:
        """Fold another session's bundle (a worker's) into this one.

        Parameters
        ----------
        payload:
            A bundle produced by :meth:`to_payload`.
        parent_id:
            Span the shipped span subtree is re-parented under.
        """
        from .spans import Span

        self.tracer.ingest(
            [Span.from_payload(item) for item in payload.get("spans", [])],
            parent_id=parent_id,
        )
        self.metrics.merge_payload(payload.get("metrics", []))
        self.convergence.merge_payload(payload.get("convergence", []))

    def __repr__(self) -> str:
        return (
            f"Telemetry(trace_id={self.tracer.trace_id!r}, "
            f"spans={len(self.tracer)}, metrics={len(self.metrics)}, "
            f"convergence={len(self.convergence)})"
        )


# The module-global active session; ``None`` means telemetry is disabled.
_ACTIVE: Telemetry | None = None


class _NullSpan:
    """Shared no-op stand-in returned by :func:`span` when disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attributes: Any) -> "_NullSpan":
        """Ignore attributes; returns ``self``."""
        return self


class _NullStream:
    """Shared no-op stand-in returned by :func:`convergence_stream`."""

    __slots__ = ()

    def record(self, step: int, best_score: int, elapsed_seconds: float) -> None:
        """Ignore the event.

        Parameters
        ----------
        step, best_score, elapsed_seconds:
            Discarded.
        """
        return None


_NULL_SPAN = _NullSpan()
_NULL_STREAM = _NullStream()


# --------------------------------------------------------------------------- #
# Session management
# --------------------------------------------------------------------------- #
def enable(telemetry: Telemetry | None = None) -> Telemetry:
    """Make ``telemetry`` (or a fresh session) the active session.

    Parameters
    ----------
    telemetry:
        An existing session to activate; a new one is created when
        omitted.
    """
    global _ACTIVE
    _ACTIVE = telemetry if telemetry is not None else Telemetry()
    return _ACTIVE


def disable() -> Telemetry | None:
    """Deactivate telemetry; returns the session that was active (if any)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    return previous


def get_active() -> Telemetry | None:
    """The active session, or ``None`` when telemetry is disabled."""
    return _ACTIVE


def is_enabled() -> bool:
    """Whether a telemetry session is currently active."""
    return _ACTIVE is not None


@contextmanager
def session(telemetry: Telemetry | None = None):
    """Activate a session for the duration of a ``with`` block.

    Restores whatever was active before on exit, so sessions nest safely
    (the inner session simply shadows the outer one).

    Parameters
    ----------
    telemetry:
        An existing session to activate; a new one is created when
        omitted.  The session is the value bound by ``as``.
    """
    global _ACTIVE
    previous = _ACTIVE
    active = enable(telemetry)
    try:
        yield active
    finally:
        _ACTIVE = previous


# --------------------------------------------------------------------------- #
# Hot-path helpers (no-ops while disabled)
# --------------------------------------------------------------------------- #
def span(name: str, **attributes: Any):
    """Open a span on the active session; a shared no-op when disabled.

    Parameters
    ----------
    name:
        Span name (dotted, e.g. ``"aggregate.solve"``).
    attributes:
        Initial key/value annotations.
    """
    active = _ACTIVE
    if active is None:
        return _NULL_SPAN
    return active.tracer.span(name, **attributes)


def attach(span_id: str | None):
    """Parent subsequent spans under ``span_id`` inside a ``with`` block.

    A no-op context manager when disabled.

    Parameters
    ----------
    span_id:
        The parent span identifier (from
        :meth:`~repro.telemetry.spans.Tracer.current_span_id`).
    """
    active = _ACTIVE
    if active is None:
        return _NULL_SPAN
    return active.tracer.attach(span_id)


def count(name: str, value: float = 1.0, **labels: Any) -> None:
    """Increment the counter ``name`` on the active session.

    Parameters
    ----------
    name:
        Counter name.
    value:
        Increment (default 1).
    labels:
        Label set selecting the series.
    """
    active = _ACTIVE
    if active is None:
        return
    active.metrics.counter(name).inc(value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    """Record one histogram observation on the active session.

    Parameters
    ----------
    name:
        Histogram name.
    value:
        The observation (seconds for latency histograms).
    labels:
        Label set selecting the series.
    """
    active = _ACTIVE
    if active is None:
        return
    active.metrics.histogram(name).observe(value, **labels)


def set_gauge(name: str, value: float, **labels: Any) -> None:
    """Set the gauge ``name`` on the active session.

    Parameters
    ----------
    name:
        Gauge name.
    value:
        The level reading.
    labels:
        Label set selecting the series.
    """
    active = _ACTIVE
    if active is None:
        return
    active.metrics.gauge(name).set(value, **labels)


def convergence_stream(algorithm: str, dataset: str = "") -> ConvergenceStream | _NullStream:
    """Open a convergence stream; a shared no-op when disabled.

    Parameters
    ----------
    algorithm:
        Name of the algorithm driving the incremental search.
    dataset:
        Name of the dataset being aggregated.
    """
    active = _ACTIVE
    if active is None:
        return _NULL_STREAM
    return active.convergence.stream(algorithm, dataset)
