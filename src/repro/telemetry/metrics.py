"""Metrics registry: counters, gauges and fixed-bucket histograms.

The numeric side of the telemetry layer.  Where spans answer "where did
*this* request's time go", metrics answer aggregate questions — cache hit
rates per tier, request counts per source, latency percentiles — with a
bounded, constant-size memory footprint:

* :class:`Counter` — monotonically increasing totals (cache hits, runs
  executed), one value per label set;
* :class:`Gauge` — last-write-wins level readings (queue depth, entries);
* :class:`Histogram` — fixed-bucket latency distributions; percentiles
  are estimated by linear interpolation inside the winning bucket, so a
  histogram costs O(#buckets) memory however many observations it absorbs.

A :class:`MetricsRegistry` is the session-level container: get-or-create
accessors (so instrumentation sites never race on "who registers first"),
a JSON-serializable snapshot, and ``merge_payload`` for folding a worker
process's snapshot into the driver's registry (counters and histogram
buckets add, gauges keep the merged-in value).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram bucket upper bounds, in seconds — spanning the ~10µs
#: array-kernel aggregations up to multi-second exact solver runs.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-5,
    1e-4,
    5e-4,
    1e-3,
    5e-3,
    1e-2,
    5e-2,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    """Canonical hashable form of a label set."""
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class Counter:
    """Monotonically increasing totals, one per label set.

    Parameters
    ----------
    name:
        Metric name (dotted, e.g. ``"cache.lookup"``).
    help:
        One-line description shown by the exporters.
    """

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        """Add ``value`` (default 1) to the series selected by ``labels``."""
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels: Any) -> float:
        """Current total of the series selected by ``labels``."""
        return self._values.get(_label_key(labels), 0.0)

    def to_payload(self) -> dict[str, Any]:
        """JSON-serializable snapshot."""
        with self._lock:
            series = [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ]
        return {"name": self.name, "kind": self.kind, "help": self.help, "series": series}

    def _merge(self, series: list[dict[str, Any]]) -> None:
        with self._lock:
            for item in series:
                key = _label_key(item.get("labels", {}))
                self._values[key] = self._values.get(key, 0.0) + float(item["value"])


class Gauge:
    """Last-write-wins level readings, one per label set.

    Parameters
    ----------
    name:
        Metric name.
    help:
        One-line description shown by the exporters.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def set(self, value: float, **labels: Any) -> None:
        """Set the series selected by ``labels`` to ``value``."""
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def value(self, **labels: Any) -> float:
        """Current reading of the series selected by ``labels``."""
        return self._values.get(_label_key(labels), 0.0)

    def to_payload(self) -> dict[str, Any]:
        """JSON-serializable snapshot."""
        with self._lock:
            series = [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ]
        return {"name": self.name, "kind": self.kind, "help": self.help, "series": series}

    def _merge(self, series: list[dict[str, Any]]) -> None:
        with self._lock:
            for item in series:
                self._values[_label_key(item.get("labels", {}))] = float(item["value"])


class _HistogramSeries:
    """Bucket counts + sum/count/max of one label set."""

    __slots__ = ("buckets", "sum", "count", "max")

    def __init__(self, num_buckets: int):
        self.buckets = [0] * (num_buckets + 1)  # +1: the +Inf bucket
        self.sum = 0.0
        self.count = 0
        self.max = 0.0


class Histogram:
    """Fixed-bucket distribution of observations (latencies, sizes).

    Parameters
    ----------
    name:
        Metric name.
    help:
        One-line description shown by the exporters.
    buckets:
        Strictly increasing upper bounds; observations above the last
        bound land in an implicit +Inf bucket.  Defaults to
        :data:`DEFAULT_LATENCY_BUCKETS`.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
    ):
        self.name = name
        self.help = help
        bounds = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram buckets must be strictly increasing: {bounds}")
        self.buckets = bounds
        self._lock = threading.Lock()
        self._series: dict[tuple[tuple[str, str], ...], _HistogramSeries] = {}

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation on the series selected by ``labels``."""
        key = _label_key(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            series.buckets[index] += 1
            series.sum += value
            series.count += 1
            if value > series.max:
                series.max = value

    def count(self, **labels: Any) -> int:
        """Number of observations recorded on the series."""
        series = self._series.get(_label_key(labels))
        return series.count if series else 0

    def sum(self, **labels: Any) -> float:
        """Sum of the observations recorded on the series."""
        series = self._series.get(_label_key(labels))
        return series.sum if series else 0.0

    def percentile(self, fraction: float, **labels: Any) -> float:
        """Estimated value at ``fraction`` (0..1) of the distribution.

        The winning bucket is found from the cumulative counts and the
        value is linearly interpolated between its bounds; the +Inf bucket
        reports the maximum observation seen.

        Parameters
        ----------
        fraction:
            Quantile fraction, e.g. 0.95 for p95.
        labels:
            Label set selecting the series.
        """
        series = self._series.get(_label_key(labels))
        if series is None or series.count == 0:
            return 0.0
        target = fraction * series.count
        cumulative = 0
        for index, bucket_count in enumerate(series.buckets):
            cumulative += bucket_count
            if cumulative >= target:
                if index >= len(self.buckets):  # +Inf bucket
                    return series.max
                upper = self.buckets[index]
                lower = self.buckets[index - 1] if index > 0 else 0.0
                if bucket_count == 0:
                    return upper
                within = (target - (cumulative - bucket_count)) / bucket_count
                return lower + within * (upper - lower)
        return series.max

    def to_payload(self) -> dict[str, Any]:
        """JSON-serializable snapshot."""
        with self._lock:
            series = [
                {
                    "labels": dict(key),
                    "buckets": list(item.buckets),
                    "sum": item.sum,
                    "count": item.count,
                    "max": item.max,
                }
                for key, item in sorted(self._series.items())
            ]
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "bounds": list(self.buckets),
            "series": series,
        }

    def _merge(self, series: list[dict[str, Any]]) -> None:
        with self._lock:
            for item in series:
                key = _label_key(item.get("labels", {}))
                mine = self._series.get(key)
                if mine is None:
                    mine = self._series[key] = _HistogramSeries(len(self.buckets))
                theirs = list(item["buckets"])
                if len(theirs) != len(mine.buckets):
                    raise ValueError(
                        f"histogram {self.name!r}: incompatible bucket layout "
                        f"({len(theirs)} vs {len(mine.buckets)})"
                    )
                for index, bucket_count in enumerate(theirs):
                    mine.buckets[index] += int(bucket_count)
                mine.sum += float(item["sum"])
                mine.count += int(item["count"])
                mine.max = max(mine.max, float(item.get("max", 0.0)))


class MetricsRegistry:
    """Session-level container of every metric instrument.

    Accessors are get-or-create and type-checked: two instrumentation
    sites asking for the same name share one instrument, asking for the
    same name with a different kind is a programming error.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # ------------------------------------------------------------------ #
    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the :class:`Counter` called ``name``.

        Parameters
        ----------
        name:
            Metric name.
        help:
            Description recorded on first creation.
        """
        return self._get_or_create(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the :class:`Gauge` called ``name``.

        Parameters
        ----------
        name:
            Metric name.
        help:
            Description recorded on first creation.
        """
        return self._get_or_create(name, Gauge, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] | None = None
    ) -> Histogram:
        """Get or create the :class:`Histogram` called ``name``.

        Parameters
        ----------
        name:
            Metric name.
        help:
            Description recorded on first creation.
        buckets:
            Bucket bounds applied on first creation (later calls reuse the
            existing instrument unchanged).
        """
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = Histogram(name, help, buckets)
            elif not isinstance(metric, Histogram):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def _get_or_create(self, name: str, cls, help: str):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, help)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """The instrument called ``name``, or ``None``.

        Parameters
        ----------
        name:
            Metric name to look up.
        """
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------ #
    def to_payload(self) -> list[dict[str, Any]]:
        """JSON-serializable snapshot of every instrument, sorted by name."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda metric: metric.name)
        return [metric.to_payload() for metric in metrics]

    def merge_payload(self, payload: list[dict[str, Any]]) -> None:
        """Fold a snapshot (e.g. a worker process's) into this registry.

        Counters and histogram buckets add; gauges take the merged-in
        value.  Instruments missing here are created with the snapshot's
        kind and layout.

        Parameters
        ----------
        payload:
            A list previously produced by :meth:`to_payload`.
        """
        for item in payload:
            kind = item["kind"]
            if kind == "counter":
                self.counter(item["name"], item.get("help", ""))._merge(item["series"])
            elif kind == "gauge":
                self.gauge(item["name"], item.get("help", ""))._merge(item["series"])
            elif kind == "histogram":
                self.histogram(
                    item["name"], item.get("help", ""), tuple(item["bounds"])
                )._merge(item["series"])
            else:
                raise ValueError(f"unknown metric kind {kind!r}")

    def __repr__(self) -> str:
        return f"MetricsRegistry(metrics={len(self._metrics)})"
