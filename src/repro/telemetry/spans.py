"""Span-based tracer: where the time of one request / batch / race went.

A *span* is one named, timed region of work — ``aggregate.solve``, an
engine fan-out, a portfolio member run — with key/value attributes and a
parent link.  Spans of one session form a tree (the *trace*): the tracer
keeps the identifier of the span currently being executed in a
:class:`contextvars.ContextVar`, so a span opened anywhere in the call
stack (or in a task the caller attached explicitly) is parented under the
span that was active when it started.

Clocks
------
Durations come from :func:`time.perf_counter` (monotonic — immune to wall
clock adjustments); every span additionally records an absolute
``start_unix`` timestamp derived from one wall-clock/monotonic anchor pair
taken when the tracer was created, so spans recorded by *different
processes* can be merged onto a common time axis (the process
:class:`~repro.engine.backends.ProcessPoolBackend` ships worker spans back
to the driver, see :mod:`repro.telemetry.propagation`).

The tracer is thread-safe: concurrent spans from a
:class:`~repro.engine.backends.ThreadBackend` fan-out append to the same
finished-span list under a lock, and the contextvar keeps their parent
links independent per thread.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Span", "SpanHandle", "Tracer"]

# The span currently being executed, per context (thread / task).
_CURRENT_SPAN: ContextVar[str | None] = ContextVar("repro_current_span", default=None)

_ID_COUNTER = itertools.count(1)


def _new_id(prefix: str) -> str:
    """Process-unique identifier (``prefix-pid-counter``)."""
    return f"{prefix}-{os.getpid():x}-{next(_ID_COUNTER):x}"


@dataclass
class Span:
    """One finished, timed region of work.

    Attributes
    ----------
    name:
        Region name (dotted, e.g. ``"aggregate.solve"``).
    span_id:
        Process-unique identifier of this span.
    parent_id:
        Identifier of the enclosing span, or ``None`` for a trace root.
    trace_id:
        Identifier of the trace (telemetry session) the span belongs to.
    start_unix:
        Absolute start time (seconds since the Unix epoch, derived from
        the tracer's wall/monotonic anchor — comparable across processes).
    duration_seconds:
        Monotonic-clock duration of the region.
    pid, tid:
        Process and thread that executed the region (Chrome-trace lanes).
    attributes:
        Key/value annotations (``algorithm``, ``dataset``, counts, ...).
    """

    name: str
    span_id: str
    parent_id: str | None
    trace_id: str
    start_unix: float
    duration_seconds: float
    pid: int
    tid: int
    attributes: dict[str, Any] = field(default_factory=dict)

    def to_payload(self) -> dict[str, Any]:
        """JSON-serializable form (the bundle / exporter input)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start_unix": self.start_unix,
            "duration_seconds": self.duration_seconds,
            "pid": self.pid,
            "tid": self.tid,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "Span":
        """Rebuild a span from its :meth:`to_payload` form.

        Parameters
        ----------
        payload:
            A dictionary previously produced by :meth:`to_payload`.
        """
        return cls(
            name=str(payload["name"]),
            span_id=str(payload["span_id"]),
            parent_id=payload.get("parent_id"),
            trace_id=str(payload.get("trace_id", "")),
            start_unix=float(payload["start_unix"]),
            duration_seconds=float(payload["duration_seconds"]),
            pid=int(payload.get("pid", 0)),
            tid=int(payload.get("tid", 0)),
            attributes=dict(payload.get("attributes", {})),
        )


class SpanHandle:
    """Context manager for one open span.

    Returned by :meth:`Tracer.span`; entering starts the clock and makes
    the span the current parent for anything opened inside the ``with``
    block, exiting records the finished :class:`Span` on the tracer.

    Parameters
    ----------
    tracer:
        The tracer that created the handle and will record the span.
    name:
        Span name.
    attributes:
        Initial key/value annotations (extendable with :meth:`set`).
    """

    __slots__ = (
        "_tracer",
        "name",
        "span_id",
        "attributes",
        "_token",
        "_start_perf",
        "_parent_id",
    )

    def __init__(self, tracer: "Tracer", name: str, attributes: dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.span_id = _new_id("s")
        self.attributes = attributes
        self._token = None
        self._start_perf = 0.0
        self._parent_id: str | None = None

    def set(self, **attributes: Any) -> "SpanHandle":
        """Attach additional attributes to the span; returns ``self``."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "SpanHandle":
        self._parent_id = _CURRENT_SPAN.get()
        self._token = _CURRENT_SPAN.set(self.span_id)
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end_perf = time.perf_counter()
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._record(
            Span(
                name=self.name,
                span_id=self.span_id,
                parent_id=self._parent_id,
                trace_id=self._tracer.trace_id,
                start_unix=self._tracer.to_unix(self._start_perf),
                duration_seconds=end_perf - self._start_perf,
                pid=os.getpid(),
                tid=threading.get_ident(),
                attributes=self.attributes,
            )
        )


class _AttachedContext:
    """Context manager rebinding the current-span contextvar to a given id."""

    __slots__ = ("_span_id", "_token")

    def __init__(self, span_id: str | None):
        self._span_id = span_id
        self._token = None

    def __enter__(self) -> None:
        self._token = _CURRENT_SPAN.set(self._span_id)

    def __exit__(self, exc_type, exc, tb) -> None:
        _CURRENT_SPAN.reset(self._token)


class Tracer:
    """Collects the spans of one telemetry session.

    Parameters
    ----------
    trace_id:
        Identifier stamped on every span; a fresh one is generated when
        omitted.  Worker-side tracers receive the driver's trace id so the
        merged spans form one trace.
    """

    def __init__(self, trace_id: str | None = None):
        self.trace_id = trace_id or _new_id("t")
        # Wall/monotonic anchor pair: unix_time(perf) = anchor_unix + (perf - anchor_perf)
        self._anchor_unix = time.time()
        self._anchor_perf = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: list[Span] = []

    # ------------------------------------------------------------------ #
    def span(self, name: str, **attributes: Any) -> SpanHandle:
        """Open a span; use as a context manager.

        Parameters
        ----------
        name:
            Span name (dotted, e.g. ``"engine.batch"``).
        attributes:
            Initial key/value annotations.
        """
        return SpanHandle(self, name, attributes)

    def attach(self, span_id: str | None) -> _AttachedContext:
        """Make ``span_id`` the current parent inside a ``with`` block.

        Used when work hops execution contexts (a pool thread, a shipped
        worker call): spans opened inside the block are parented under
        ``span_id`` instead of whatever the destination context held.

        Parameters
        ----------
        span_id:
            The parent span identifier to restore (``None`` detaches).
        """
        return _AttachedContext(span_id)

    @staticmethod
    def current_span_id() -> str | None:
        """Identifier of the span currently being executed (or ``None``)."""
        return _CURRENT_SPAN.get()

    def to_unix(self, perf_value: float) -> float:
        """Convert a :func:`time.perf_counter` reading to Unix seconds.

        Parameters
        ----------
        perf_value:
            A monotonic-clock reading taken in this process.
        """
        return self._anchor_unix + (perf_value - self._anchor_perf)

    # ------------------------------------------------------------------ #
    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def ingest(self, spans: list[Span], *, parent_id: str | None = None) -> int:
        """Merge spans recorded elsewhere (another process) into this trace.

        Root spans of the shipped set (spans whose parent is not itself in
        the set) are re-parented under ``parent_id``, and every span is
        re-stamped with this tracer's trace id — the result is one
        connected trace.  Returns the number of spans ingested.

        Parameters
        ----------
        spans:
            Spans shipped back from a worker (see
            :mod:`repro.telemetry.propagation`).
        parent_id:
            Span the shipped subtree is attached under (``None`` keeps the
            roots as trace roots).
        """
        shipped_ids = {span.span_id for span in spans}
        with self._lock:
            for span in spans:
                if span.parent_id not in shipped_ids:
                    span.parent_id = parent_id
                span.trace_id = self.trace_id
                self._spans.append(span)
        return len(spans)

    # ------------------------------------------------------------------ #
    def finished_spans(self) -> list[Span]:
        """Snapshot of every span recorded so far (in completion order)."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def to_payload(self) -> list[dict[str, Any]]:
        """JSON-serializable form of every recorded span."""
        return [span.to_payload() for span in self.finished_spans()]

    def __repr__(self) -> str:
        return f"Tracer(trace_id={self.trace_id!r}, spans={len(self)})"
