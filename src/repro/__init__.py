"""repro — reproduction of "Rank aggregation with ties: Experiments and Analysis".

Brancotte, Yang, Blin, Cohen-Boulakia, Denise, Hamel — PVLDB 8(11), 2015.

The package provides:

* :mod:`repro.core` — rankings with ties, generalized Kendall-τ distance,
  Kemeny scores, similarity;
* :mod:`repro.datasets` — dataset container, normalization (projection /
  unification), I/O, real-world-like builders;
* :mod:`repro.generators` — synthetic dataset generators (uniform rankings
  with ties, Markov-chain similarity control, unified top-k, permutation
  models);
* :mod:`repro.algorithms` — the full Table 1 catalogue, including the
  paper's exact LPB algorithm;
* :mod:`repro.evaluation` — gap / m-gap, experiment runner, timing,
  guidance engine;
* :mod:`repro.experiments` — one driver per table / figure of the paper.

Quickstart
----------

>>> from repro import Ranking, aggregate
>>> rankings = [
...     Ranking([["A"], ["D"], ["B", "C"]]),
...     Ranking([["A"], ["B", "C"], ["D"]]),
...     Ranking([["D"], ["A", "C"], ["B"]]),
... ]
>>> result = aggregate(rankings, algorithm="BioConsert")
>>> result.consensus
Ranking([{'A'}, {'D'}, {'B', 'C'}])
>>> result.score
5
"""

from __future__ import annotations

from collections.abc import Sequence

from .algorithms import AggregationResult, make_algorithm
from .core import (
    Ranking,
    dataset_similarity,
    generalized_kemeny_score,
    generalized_kendall_tau_distance,
    kendall_tau_correlation,
    kendall_tau_distance,
)
from .datasets import Dataset, project, unify
from .evaluation import recommend

__version__ = "1.0.0"

__all__ = [
    "Ranking",
    "Dataset",
    "aggregate",
    "make_algorithm",
    "AggregationResult",
    "generalized_kendall_tau_distance",
    "kendall_tau_distance",
    "generalized_kemeny_score",
    "kendall_tau_correlation",
    "dataset_similarity",
    "project",
    "unify",
    "recommend",
    "ScenarioMatrix",
    "register_scenario",
    "scenario_names",
    "get_scenario",
    "list_scenarios",
    "__version__",
]

# Workload-scenario API, resolved lazily so that `import repro` stays light
# (the catalog pulls in every generator family and the engine stack).
_WORKLOADS_EXPORTS = (
    "ScenarioMatrix",
    "register_scenario",
    "scenario_names",
    "get_scenario",
    "list_scenarios",
)


def __getattr__(name: str):
    if name in _WORKLOADS_EXPORTS:
        from . import workloads

        return getattr(workloads, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def aggregate(
    dataset: Dataset | Sequence[Ranking],
    algorithm: str = "BioConsert",
    *,
    seed: int | None = None,
) -> AggregationResult:
    """Aggregate rankings with ties into a consensus ranking.

    Convenience one-call entry point: instantiates the algorithm by its
    paper name (see :func:`repro.algorithms.available_algorithms`) and runs
    it on the dataset.

    Parameters
    ----------
    dataset:
        A :class:`Dataset` or a sequence of :class:`Ranking` objects, all
        over the same elements (normalize first otherwise).
    algorithm:
        Algorithm name; defaults to ``"BioConsert"``, the paper's overall
        recommendation.
    seed:
        Seed for randomized algorithms.
    """
    return make_algorithm(algorithm, seed=seed).aggregate(dataset)
