# Worker image for the sharded HTTP serving layer (repro.service.http).
#
# One container runs one `repro-rankagg serve-http` process with its own
# in-process shard pool; docker-compose scales that container into a
# multi-worker topology sharing a single disk-cache volume, so any
# worker's computed consensus is a cache hit for every other worker.
FROM python:3.11-slim

WORKDIR /app

COPY pyproject.toml README.md ./
COPY src ./src
RUN pip install --no-cache-dir .

# Shared disk tier — mount a volume here to share results across workers.
VOLUME /cache

EXPOSE 8572

# Unprivileged runtime user; the cache volume is world-writable per-mount.
RUN useradd --create-home repro
USER repro

ENTRYPOINT ["repro-rankagg", "serve-http"]
CMD ["--host", "0.0.0.0", "--port", "8572", "--shards", "2", "--cache-dir", "/cache"]
